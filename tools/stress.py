"""Randomized differential stress harness.

Runs the full cross-validation battery on a stream of random signed
graphs: MSCE under every branch strategy vs brute force, MCBasic vs
MCNew, query search vs filtered enumeration, the dynamic index vs
recompute, and the greedy heuristic's subset property. This is the
long-running version of `tests/test_cross_validation.py` — run it after
touching the enumeration core:

    python tools/stress.py --trials 500 --seed 7

Exits non-zero on the first divergence with a reproduction recipe.
"""

from __future__ import annotations

import argparse
import itertools
import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AlphaK, SignedGraph, brute_force_maximal  # noqa: E402
from repro.core import MSCE  # noqa: E402
from repro.core.dynamic import DynamicSignedCliqueIndex  # noqa: E402
from repro.core.heuristic import greedy_signed_cliques  # noqa: E402
from repro.core.mcbasic import mccore_basic  # noqa: E402
from repro.core.mcnew import mccore_new  # noqa: E402
from repro.core.query import signed_cliques_containing  # noqa: E402


def random_instance(rng: random.Random):
    n = rng.randint(4, 11)
    p = rng.uniform(0.2, 0.9)
    q = rng.uniform(0.0, 0.6)
    edges = [
        (u, v, -1 if rng.random() < q else 1)
        for u, v in itertools.combinations(range(n), 2)
        if rng.random() < p
    ]
    graph = SignedGraph(edges, nodes=range(n))
    params = AlphaK(rng.choice([0, 1, 1.5, 2, 3]), rng.choice([0, 1, 2, 3]))
    return graph, params


def run_trial(rng: random.Random, trial: int) -> None:
    graph, params = random_instance(rng)
    context = f"trial={trial} n={graph.number_of_nodes()} params={params}"

    truth = {clique.nodes for clique in brute_force_maximal(graph, params)}

    for selection in ("greedy", "random", "first"):
        got = {
            clique.nodes
            for clique in MSCE(graph, params, selection=selection, audit=True)
            .enumerate_all()
            .cliques
        }
        assert got == truth, f"MSCE[{selection}] diverged: {context}"

    assert mccore_basic(graph, params) == mccore_new(graph, params), (
        f"MCBasic != MCNew: {context}"
    )

    greedy = {clique.nodes for clique in greedy_signed_cliques(
        graph, params.alpha, params.k
    )}
    assert greedy <= truth, f"greedy produced a non-answer: {context}"

    node = rng.randrange(graph.number_of_nodes())
    expected = {clique for clique in truth if node in clique}
    queried = {
        clique.nodes
        for clique in signed_cliques_containing(graph, {node}, params.alpha, params.k)
    }
    assert queried == expected, f"query search diverged (node {node}): {context}"

    index = DynamicSignedCliqueIndex(graph, params)
    nodes = sorted(graph.nodes())
    for _ in range(4):
        u, v = rng.sample(nodes, 2)
        if index.graph.has_edge(u, v):
            index.remove_edge(u, v)
        else:
            index.add_edge(u, v, rng.choice([1, -1]))
    fresh = {
        clique.nodes for clique in MSCE(index.graph, params).enumerate_all().cliques
    }
    assert fresh == {clique.nodes for clique in index.cliques()}, (
        f"dynamic index diverged: {context}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    for trial in range(args.trials):
        try:
            run_trial(rng, trial)
        except AssertionError as failure:
            print(f"DIVERGENCE: {failure}", file=sys.stderr)
            print(
                f"reproduce with: python tools/stress.py --trials {trial + 1} "
                f"--seed {args.seed}",
                file=sys.stderr,
            )
            return 1
        if (trial + 1) % 50 == 0:
            print(f"{trial + 1}/{args.trials} trials clean")
    print(f"all {args.trials} trials clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
