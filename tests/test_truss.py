"""Unit tests for k-truss decomposition (cross-checked against networkx)."""

import itertools
import random

import networkx as nx
import pytest

from repro.algorithms import k_truss, max_trussness, truss_numbers, truss_vs_mccore
from repro.exceptions import ParameterError
from repro.graphs import SignedGraph
from tests.conftest import make_random_signed_graph


def _to_networkx(graph: SignedGraph, sign: str = "all") -> nx.Graph:
    result = nx.Graph()
    for u, v, edge_sign in graph.edges():
        if sign == "all" or (sign == "positive" and edge_sign > 0):
            result.add_edge(u, v)
    return result


class TestKTruss:
    def test_clique_is_its_own_truss(self):
        clique = SignedGraph([(u, v, "+") for u, v in itertools.combinations(range(5), 2)])
        assert k_truss(clique, 5) == set(range(5))
        assert k_truss(clique, 6) == set()

    def test_paper_example(self, paper_graph):
        # {v1..v5} is a 5-clique: every edge closes >= 3 triangles there.
        assert {1, 2, 3, 4, 5} <= k_truss(paper_graph, 5)
        assert 8 not in k_truss(paper_graph, 4)

    def test_matches_networkx_on_random_graphs(self):
        rng = random.Random(111)
        for _ in range(30):
            graph = make_random_signed_graph(rng)
            for k in (3, 4, 5):
                ours = k_truss(graph, k)
                theirs = set(nx.k_truss(_to_networkx(graph), k).nodes())
                # networkx keeps isolated-in-truss nodes out as we do.
                assert ours == theirs, k

    def test_positive_sign_mode(self, paper_graph):
        positive = k_truss(paper_graph, 4, sign="positive")
        # (v2, v3) is negative, so the positive 4-truss loses the big clique.
        assert positive <= {1, 2, 3, 4, 5}

    def test_low_k_keeps_non_isolated(self, paper_graph):
        assert k_truss(paper_graph, 2) == paper_graph.node_set()

    def test_invalid_k(self, paper_graph):
        with pytest.raises(ParameterError):
            k_truss(paper_graph, -1)

    def test_within_scope(self, paper_graph):
        scoped = k_truss(paper_graph, 3, within={1, 2, 3, 4})
        assert scoped == {1, 2, 3, 4}


class TestTrussNumbers:
    def test_consistent_with_k_truss(self):
        rng = random.Random(112)
        for _ in range(15):
            graph = make_random_signed_graph(rng)
            numbers = truss_numbers(graph)
            for k in (3, 4, 5):
                truss_nodes = k_truss(graph, k)
                # Every edge with trussness >= k must connect truss nodes.
                for (u, v), t in numbers.items():
                    if t >= k:
                        assert u in truss_nodes and v in truss_nodes

    def test_every_edge_gets_a_number(self, paper_graph):
        numbers = truss_numbers(paper_graph)
        assert len(numbers) == paper_graph.number_of_edges()
        assert all(t >= 2 for t in numbers.values())

    def test_max_trussness(self, paper_graph):
        assert max_trussness(paper_graph) == 5
        assert max_trussness(SignedGraph()) == 0


class TestTrussVsMccore:
    def test_report_shape(self, paper_graph):
        report = truss_vs_mccore(paper_graph, alpha=3, k=1)
        assert report["graph"] == 8
        assert report["mccore"] <= report["positive-core"] <= report["graph"]
        # The paper's Remark: the truss is a different model — on the
        # running example the positive truss at the matching order keeps
        # a different node set than the MCCore.
        assert "positive-truss" in report
