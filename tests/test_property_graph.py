"""Property-based tests (hypothesis) for the SignedGraph structure."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import SignedGraph, validation_errors

# A small signed graph described by node count and per-pair sign choices:
# for each unordered pair an element of {absent, +1, -1}.
signed_graphs = st.integers(min_value=0, max_value=8).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.sampled_from([0, 1, -1]),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        ),
    )
)


def _build(spec) -> SignedGraph:
    n, signs = spec
    graph = SignedGraph(nodes=range(n))
    for (u, v), sign in zip(itertools.combinations(range(n), 2), signs):
        if sign:
            graph.add_edge(u, v, sign)
    return graph


@settings(max_examples=60, deadline=None)
@given(signed_graphs)
def test_construction_keeps_indexes_consistent(spec):
    graph = _build(spec)
    assert validation_errors(graph) == []


@settings(max_examples=60, deadline=None)
@given(signed_graphs)
def test_degree_identities(spec):
    graph = _build(spec)
    for node in graph.nodes():
        assert graph.degree(node) == graph.positive_degree(node) + graph.negative_degree(node)
    assert sum(graph.degree(v) for v in graph.nodes()) == 2 * graph.number_of_edges()
    assert (
        graph.number_of_edges()
        == graph.number_of_positive_edges() + graph.number_of_negative_edges()
    )


@settings(max_examples=60, deadline=None)
@given(signed_graphs)
def test_copy_equals_and_is_detached(spec):
    graph = _build(spec)
    clone = graph.copy()
    assert clone == graph
    clone.add_edge("x", "y", "+")
    assert not graph.has_node("x")
    assert validation_errors(clone) == []


@settings(max_examples=60, deadline=None)
@given(signed_graphs, st.sets(st.integers(min_value=0, max_value=7)))
def test_subgraph_is_induced(spec, keep):
    graph = _build(spec)
    sub = graph.subgraph(keep)
    scope = keep & graph.node_set()
    assert sub.node_set() == scope
    for u, v, sign in sub.edges():
        assert graph.sign(u, v) == sign
    # Every host edge with both endpoints kept must survive.
    for u, v, sign in graph.edges():
        if u in scope and v in scope:
            assert sub.sign(u, v) == sign
    assert validation_errors(sub) == []


@settings(max_examples=60, deadline=None)
@given(signed_graphs)
def test_positive_subgraph_drops_exactly_negatives(spec):
    graph = _build(spec)
    positive = graph.positive_subgraph()
    assert positive.number_of_negative_edges() == 0
    assert positive.number_of_positive_edges() == graph.number_of_positive_edges()
    assert positive.node_set() == graph.node_set()


@settings(max_examples=60, deadline=None)
@given(signed_graphs)
def test_edge_removal_reverses_addition(spec):
    graph = _build(spec)
    edges = list(graph.edges())
    for u, v, sign in edges:
        graph.remove_edge(u, v)
        assert not graph.has_edge(u, v)
    assert graph.number_of_edges() == 0
    assert validation_errors(graph) == []
