"""Property tests for the packed-uint64 bitset algebra (``fastpath.packed``).

The vectorized tier interoperates with the int-mask search layer through
the conversions in :mod:`repro.fastpath.packed`; the whole bit-identity
contract rests on those conversions being lossless and on the packed
algebra agreeing operation-for-operation with Python big-int arithmetic.
Hypothesis drives both directions of the round-trip and the algebra
parity over arbitrary masks and widths (word-boundary widths included).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.fastpath import packed  # noqa: E402  (needs numpy first)
from repro.fastpath.bitset import bit_count, iter_bits  # noqa: E402

# Widths straddle the uint64 word boundary on purpose: 1..200 covers
# 1-4 words including the exact-multiple edge cases 64 and 128.
widths = st.integers(min_value=1, max_value=200)


def masks_for(n: int):
    return st.integers(min_value=0, max_value=(1 << n) - 1)


mask_pairs = widths.flatmap(
    lambda n: st.tuples(st.just(n), masks_for(n), masks_for(n))
)


@settings(max_examples=200, deadline=None)
@given(widths.flatmap(lambda n: st.tuples(st.just(n), masks_for(n))))
def test_pack_unpack_roundtrip(spec):
    n, mask = spec
    words = packed.pack_mask(mask, n)
    assert words.dtype == np.uint64
    assert words.shape == (packed.n_words(n),)
    assert packed.unpack_mask(words) == mask


@settings(max_examples=200, deadline=None)
@given(mask_pairs)
def test_algebra_matches_int_masks(spec):
    n, a, b = spec
    pa, pb = packed.pack_mask(a, n), packed.pack_mask(b, n)
    assert packed.unpack_mask(packed.and_(pa, pb)) == a & b
    assert packed.unpack_mask(packed.or_(pa, pb)) == a | b
    assert packed.unpack_mask(packed.andnot(pa, pb)) == a & ~b
    assert packed.popcount(pa) == bit_count(a)


@settings(max_examples=150, deadline=None)
@given(widths.flatmap(lambda n: st.tuples(st.just(n), masks_for(n))))
def test_bit_enumeration_matches_int_layer(spec):
    n, mask = spec
    words = packed.pack_mask(mask, n)
    expected = list(iter_bits(mask))
    assert list(packed.iter_bits(words)) == expected
    assert packed.indices(words, n).tolist() == expected


@settings(max_examples=150, deadline=None)
@given(widths.flatmap(lambda n: st.tuples(st.just(n), masks_for(n))))
def test_bool_vector_roundtrip(spec):
    n, mask = spec
    flags = np.array([(mask >> i) & 1 for i in range(n)], dtype=bool)
    words = packed.pack_bool(flags)
    assert packed.unpack_mask(words) == mask
    assert packed.unpack_bool(words, n).tolist() == flags.tolist()


@settings(max_examples=100, deadline=None)
@given(st.lists(masks_for(200), min_size=0, max_size=8))
def test_pack_masks_rows_roundtrip(masks):
    matrix = packed.pack_masks(masks, 200)
    assert packed.unpack_rows(matrix) == list(masks)


@settings(max_examples=100, deadline=None)
@given(mask_pairs)
def test_test_and_clear_bits_match_int_ops(spec):
    n, a, b = spec
    matrix = packed.pack_masks([a, b], n)
    positions = np.arange(n, dtype=np.int64)
    rows = np.zeros(n, dtype=np.int64)
    got = packed.test_bit(np.ascontiguousarray(matrix), rows, positions)
    assert got.tolist() == [bool((a >> i) & 1) for i in range(n)]
    # Clearing the set bits of b from row 0 must equal a & ~b.
    hits = packed.indices(packed.pack_mask(b, n), n)
    packed.clear_bits(matrix, np.zeros(hits.shape[0], dtype=np.int64), hits)
    assert packed.unpack_mask(matrix[0]) == a & ~b
    assert packed.unpack_mask(matrix[1]) == b


@settings(max_examples=100, deadline=None)
@given(mask_pairs)
def test_popcount_rows_matches_bit_count(spec):
    n, a, b = spec
    matrix = packed.pack_masks([a, b, a & b], n)
    assert packed.popcount_rows(matrix).tolist() == [
        bit_count(a),
        bit_count(b),
        bit_count(a & b),
    ]


def test_popcount_lut_fallback_matches_bitwise_count():
    """Force the 8-bit LUT path (the numpy<2 fallback) and pin parity."""
    rng = np.random.default_rng(20180414)
    matrix = rng.integers(0, 2**64, size=(16, 7), dtype=np.uint64)
    with_lut = packed._POPCOUNT_LUT[matrix.view(np.uint8)].sum(
        axis=1, dtype=np.int64
    )
    assert with_lut.tolist() == packed.popcount_rows(matrix).tolist()
    expected = [bit_count(m) for m in packed.unpack_rows(matrix)]
    assert packed.popcount_rows(matrix).tolist() == expected
