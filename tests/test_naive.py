"""Unit tests for the reference enumerators."""

import random

import pytest

from repro.core import AlphaK, brute_force_maximal, reference_enumerate
from repro.exceptions import ParameterError
from repro.graphs import SignedGraph
from tests.conftest import make_random_signed_graph


class TestBruteForce:
    def test_paper_example(self, paper_graph):
        cliques = brute_force_maximal(paper_graph, AlphaK(3, 1))
        assert [sorted(c.nodes) for c in cliques] == [[1, 2, 3, 4, 5]]

    def test_node_limit_guard(self):
        graph = SignedGraph([(u, u + 1, "+") for u in range(30)])
        with pytest.raises(ParameterError):
            brute_force_maximal(graph, AlphaK(1, 1), node_limit=20)

    def test_results_are_sorted_and_maximal(self):
        rng = random.Random(71)
        graph = make_random_signed_graph(rng, n_range=(8, 11))
        params = AlphaK(1, 1)
        cliques = brute_force_maximal(graph, params)
        sizes = [c.size for c in cliques]
        assert sizes == sorted(sizes, reverse=True)
        sets = [c.nodes for c in cliques]
        for a in sets:
            assert not any(a < b for b in sets)

    def test_every_result_is_valid(self):
        rng = random.Random(72)
        graph = make_random_signed_graph(rng)
        params = AlphaK(1.5, 1)
        for clique in brute_force_maximal(graph, params):
            clique.verify(graph)


class TestReferenceEnumerate:
    def test_matches_brute_force(self):
        rng = random.Random(73)
        for _ in range(30):
            graph = make_random_signed_graph(rng)
            params = AlphaK(rng.choice([1, 1.5, 2, 3]), rng.choice([0, 1, 2]))
            brute = {c.nodes for c in brute_force_maximal(graph, params)}
            reference = {c.nodes for c in reference_enumerate(graph, params)}
            assert brute == reference

    def test_clique_size_guard(self):
        clique = SignedGraph(
            [(u, v, "+") for u in range(25) for v in range(u + 1, 25)]
        )
        with pytest.raises(ParameterError):
            reference_enumerate(clique, AlphaK(1, 1), max_clique_size=22)

    def test_paper_example_30(self, paper_graph):
        found = {frozenset(c.nodes) for c in reference_enumerate(paper_graph, AlphaK(3, 0))}
        assert frozenset({1, 2, 4, 5}) in found
        assert frozenset({1, 3, 4, 5}) in found
