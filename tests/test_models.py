"""The signed-constraint framework and the balanced-clique model.

Pins the tentpole contracts of ``repro.models``:

* **resolution** — ``resolve_model`` precedence (explicit > env >
  default) mirrors the kernel-backend resolver, unknown names raise;
* **oracle parity** — balanced enumeration matches the model-generic
  brute-force oracle (:func:`repro.core.naive.brute_force_constraint`)
  on hundreds of generated graphs, on the pure *and* compiled paths,
  with auditing on;
* **bit-identity** — balanced cliques and ``SearchStats`` are identical
  across worker counts {1, 2, 4} and every kernel backend, like MSCE;
* **cache isolation** — the serve cache keys carry the model, so a
  balanced answer is never served for an MSCE request (or vice versa)
  across the memory and disk tiers;
* **end-to-end reach** — the CLI ``--model`` flag and the ``repro.net``
  ``model=`` request parameter run the balanced model through the same
  engines and return its exact answers.
"""

from __future__ import annotations

import itertools
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MSCE, AlphaK
from repro.core.naive import brute_force_constraint, brute_force_maximal
from repro.core.parallel import enumerate_parallel
from repro.exceptions import ParameterError
from repro.fastpath.backend import BACKENDS, resolve_backend
from repro.fastpath.compiled import compile_graph
from repro.generators import gnp_signed
from repro.graphs import SignedGraph
from repro.io.cache import entry_key
from repro.models import (
    MODEL_ENV,
    AlphaKConstraint,
    BalancedConstraint,
    available_models,
    balanced_sides,
    get_model,
    is_balanced_clique,
    make_constraint,
    resolve_model,
)
from repro.serve import SignedCliqueEngine
from tests.conftest import PAPER_EDGES, make_random_signed_graph


def _nodes(result) -> list:
    cliques = result.cliques if hasattr(result, "cliques") else result
    return [clique.nodes for clique in cliques]


# ---------------------------------------------------------------------------
# Model resolution
# ---------------------------------------------------------------------------
class TestResolveModel:
    def test_registry_contents(self):
        assert set(available_models()) >= {"msce", "balanced"}
        assert get_model("msce") is AlphaKConstraint
        assert get_model("balanced") is BalancedConstraint

    def test_default_is_msce(self, monkeypatch):
        monkeypatch.delenv(MODEL_ENV, raising=False)
        assert resolve_model() == "msce"
        assert MSCE(SignedGraph([(1, 2, "+")]), AlphaK(1, 0)).model == "msce"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(MODEL_ENV, "balanced")
        assert resolve_model() == "balanced"
        assert MSCE(SignedGraph([(1, 2, "+")]), AlphaK(1, 0)).model == "balanced"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(MODEL_ENV, "balanced")
        assert resolve_model("msce") == "msce"

    def test_unknown_model_raises(self, monkeypatch):
        with pytest.raises(ParameterError):
            resolve_model("frustration")
        monkeypatch.setenv(MODEL_ENV, "bogus")
        with pytest.raises(ParameterError):
            resolve_model()

    def test_make_constraint_carries_params(self):
        constraint = make_constraint("balanced", AlphaK(2.0, 3))
        assert isinstance(constraint, BalancedConstraint)
        assert constraint.tau == 3


# ---------------------------------------------------------------------------
# Balanced-clique primitives
# ---------------------------------------------------------------------------
class TestBalancedPrimitives:
    #: Two camps {1, 2} / {3, 4}: positive inside, negative across.
    TWO_CAMPS = SignedGraph(
        [
            (1, 2, "+"), (3, 4, "+"),
            (1, 3, "-"), (1, 4, "-"), (2, 3, "-"), (2, 4, "-"),
        ]
    )

    def test_two_camp_clique_is_balanced(self):
        sides = balanced_sides(self.TWO_CAMPS, {1, 2, 3, 4})
        assert sides is not None
        assert {frozenset(sides[0]), frozenset(sides[1])} == {
            frozenset({1, 2}),
            frozenset({3, 4}),
        }
        assert is_balanced_clique(self.TWO_CAMPS, {1, 2, 3, 4}, tau=2)
        assert not is_balanced_clique(self.TWO_CAMPS, {1, 2, 3, 4}, tau=3)

    def test_all_positive_clique_is_one_sided(self):
        graph = SignedGraph([(1, 2, "+"), (1, 3, "+"), (2, 3, "+")])
        sides = balanced_sides(graph, {1, 2, 3})
        assert sides == ({1, 2, 3}, set())
        assert is_balanced_clique(graph, {1, 2, 3}, tau=0)
        assert not is_balanced_clique(graph, {1, 2, 3}, tau=1)

    def test_intra_side_negative_is_unbalanced(self):
        # The paper's 5-clique has one internal negative edge (2, 3) and
        # all other pairs positive: signs to any anchor put 2 and 3 on
        # one side, so the clique cannot be two-sided.
        graph = SignedGraph(PAPER_EDGES)
        assert balanced_sides(graph, {1, 2, 3, 4, 5}) is None

    def test_non_clique_is_not_balanced(self):
        graph = SignedGraph([(1, 2, "+"), (2, 3, "+")])
        assert balanced_sides(graph, {1, 2, 3}) is None


# ---------------------------------------------------------------------------
# The generic brute-force oracle
# ---------------------------------------------------------------------------
class TestBruteForceConstraint:
    def test_msce_constraint_matches_dedicated_oracle(self):
        rng = random.Random(7)
        for _ in range(25):
            graph = make_random_signed_graph(rng, n_range=(3, 9))
            alpha = rng.choice([1, 1.5, 2, 3])
            k = rng.randint(0, 3)
            params = AlphaK(alpha, k)
            generic = brute_force_constraint(graph, make_constraint("msce", params))
            dedicated = brute_force_maximal(graph, params)
            assert _nodes(generic) == _nodes(dedicated)

    def test_node_limit_guard(self):
        graph = SignedGraph(nodes=range(25))
        with pytest.raises(ParameterError):
            brute_force_constraint(graph, make_constraint("msce", AlphaK(1, 0)))


# ---------------------------------------------------------------------------
# Balanced enumeration vs. the oracle (the >= 200 graph sweep)
# ---------------------------------------------------------------------------
class TestBalancedOracleParity:
    def test_two_hundred_random_graphs(self):
        rng = random.Random(20260807)
        for index in range(200):
            graph = make_random_signed_graph(rng, n_range=(3, 9))
            tau = rng.randint(0, 2)
            params = AlphaK(1.0, tau)
            expected = _nodes(
                brute_force_constraint(graph, make_constraint("balanced", params))
            )
            pure = MSCE(graph, params, model="balanced", audit=True).enumerate_all()
            fast = MSCE(
                compile_graph(graph), params, model="balanced", audit=True
            ).enumerate_all()
            assert _nodes(pure) == expected, f"pure path diverged on graph {index}"
            assert _nodes(fast) == expected, f"compiled path diverged on graph {index}"
            assert pure.stats.as_dict() == fast.stats.as_dict(), index
            assert pure.stats.model == "balanced"
            for clique in pure.cliques:
                assert is_balanced_clique(graph, clique.nodes, tau)

    def test_two_camp_graph_end_to_end(self):
        graph = TestBalancedPrimitives.TWO_CAMPS
        result = MSCE(graph, AlphaK(1.0, 2), model="balanced", audit=True).enumerate_all()
        assert _nodes(result) == [frozenset({1, 2, 3, 4})]

    def test_tau_gate_filters_one_sided_cliques(self):
        graph = SignedGraph([(1, 2, "+"), (1, 3, "+"), (2, 3, "+")])
        everything = MSCE(graph, AlphaK(1.0, 0), model="balanced").enumerate_all()
        assert _nodes(everything) == [frozenset({1, 2, 3})]
        gated = MSCE(graph, AlphaK(1.0, 1), model="balanced").enumerate_all()
        assert _nodes(gated) == []


# ---------------------------------------------------------------------------
# Bit-identity across workers and kernel backends
# ---------------------------------------------------------------------------
class TestBalancedParallel:
    @pytest.fixture(scope="class")
    def medium(self):
        graph = gnp_signed(36, 0.35, negative_fraction=0.35, seed=5)
        params = AlphaK(1.0, 1)
        baseline = MSCE(
            compile_graph(graph), params, model="balanced"
        ).enumerate_all()
        assert baseline.cliques  # the sweep must compare something real
        return graph, params, baseline

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_counts_bit_identical(self, medium, workers):
        graph, params, baseline = medium
        result = enumerate_parallel(
            graph, params.alpha, params.k, workers=workers, model="balanced"
        )
        assert _nodes(result) == _nodes(baseline)
        assert result.stats.as_dict() == baseline.stats.as_dict()
        assert result.stats.model == "balanced"
        assert result.parallel["model"] == "balanced"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_bit_identical(self, medium, backend):
        graph, params, baseline = medium
        result = enumerate_parallel(
            graph,
            params.alpha,
            params.k,
            workers=2,
            backend=backend,
            model="balanced",
        )
        assert _nodes(result) == _nodes(baseline)
        assert result.stats.as_dict() == baseline.stats.as_dict()
        assert result.parallel["backend"] == resolve_backend(backend)

    def test_env_model_reaches_the_scheduler(self, monkeypatch, medium):
        graph, params, baseline = medium
        monkeypatch.setenv(MODEL_ENV, "balanced")
        result = enumerate_parallel(graph, params.alpha, params.k, workers=2)
        assert _nodes(result) == _nodes(baseline)
        assert result.stats.as_dict() == baseline.stats.as_dict()


# ---------------------------------------------------------------------------
# Serve-cache isolation between models
# ---------------------------------------------------------------------------
class TestServeModelIsolation:
    PARAMS = AlphaK(3.0, 1)

    def _direct(self, graph, model):
        return MSCE(graph, self.PARAMS, model=model).enumerate_all()

    def test_entry_key_carries_the_model(self):
        fingerprint = "f" * 64
        msce_key = entry_key(fingerprint, self.PARAMS, "all")
        balanced_key = entry_key(fingerprint, self.PARAMS, "all", model="balanced")
        assert msce_key != balanced_key
        assert "-mmsce-" in msce_key
        assert "-mbalanced-" in balanced_key

    def test_balanced_answer_never_served_for_msce(self, tmp_path):
        """Regression: with a shared (graph, alpha, k), the model keyed
        first must not satisfy the other model's request in any tier."""
        graph = SignedGraph(PAPER_EDGES)
        direct_balanced = self._direct(graph, "balanced")
        direct_msce = self._direct(graph, "msce")
        # The paper graph separates the models: its 5-clique has an
        # intra-side negative edge, so the answers differ.
        assert _nodes(direct_balanced) != _nodes(direct_msce)

        engine = SignedCliqueEngine(graph, cache_dir=tmp_path)
        balanced = engine.enumerate_with_stats(
            self.PARAMS.alpha, self.PARAMS.k, model="balanced"
        )
        msce = engine.enumerate_with_stats(self.PARAMS.alpha, self.PARAMS.k)
        assert engine.counters["computes"] == 2  # no cross-model cache hit
        assert _nodes(balanced) == _nodes(direct_balanced)
        assert balanced.stats.as_dict() == direct_balanced.stats.as_dict()
        assert _nodes(msce) == _nodes(direct_msce)
        assert msce.stats.as_dict() == direct_msce.stats.as_dict()

        # Memory tier: each model replays its own entry.
        again_balanced = engine.enumerate_with_stats(
            self.PARAMS.alpha, self.PARAMS.k, model="balanced"
        )
        again_msce = engine.enumerate_with_stats(self.PARAMS.alpha, self.PARAMS.k)
        assert engine.counters["computes"] == 2
        assert engine.counters["memory_hits"] == 2
        assert _nodes(again_balanced) == _nodes(direct_balanced)
        assert _nodes(again_msce) == _nodes(direct_msce)

        # Disk tier: a restarted engine hits both entries, still apart.
        warm = SignedCliqueEngine(graph, cache_dir=tmp_path)
        warm_balanced = warm.enumerate_with_stats(
            self.PARAMS.alpha, self.PARAMS.k, model="balanced"
        )
        warm_msce = warm.enumerate_with_stats(self.PARAMS.alpha, self.PARAMS.k)
        assert warm.counters["computes"] == 0
        assert warm.counters["disk_hits"] == 2
        assert _nodes(warm_balanced) == _nodes(direct_balanced)
        assert warm_balanced.stats.as_dict() == direct_balanced.stats.as_dict()
        assert _nodes(warm_msce) == _nodes(direct_msce)

    def test_engine_default_model(self, tmp_path):
        graph = SignedGraph(PAPER_EDGES)
        engine = SignedCliqueEngine(graph, cache_dir=tmp_path, model="balanced")
        assert _nodes(engine.enumerate(self.PARAMS.alpha, self.PARAMS.k)) == _nodes(
            self._direct(graph, "balanced")
        )
        assert engine.cache_info()["model"] == "balanced"
        with pytest.raises(ParameterError):
            engine.query_with_stats([1], self.PARAMS.alpha, self.PARAMS.k)

    def test_top_r_and_grid_accept_model(self, tmp_path):
        graph = SignedGraph(PAPER_EDGES)
        engine = SignedCliqueEngine(graph, cache_dir=tmp_path)
        direct = self._direct(graph, "balanced")
        grid = engine.run_grid(
            [self.PARAMS.alpha], [self.PARAMS.k], model="balanced"
        )
        assert grid.report["model"] == "balanced"
        assert _nodes(grid[(self.PARAMS.alpha, self.PARAMS.k)]) == _nodes(direct)
        top = engine.top_r(self.PARAMS.alpha, self.PARAMS.k, 2, model="balanced")
        assert _nodes(top) == _nodes(direct)[:2]


# ---------------------------------------------------------------------------
# CLI and HTTP reach
# ---------------------------------------------------------------------------
class TestModelEndToEnd:
    def test_cli_enumerate_balanced(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io import write_signed_edgelist

        path = tmp_path / "paper.txt"
        write_signed_edgelist(SignedGraph(PAPER_EDGES), path)
        assert (
            main(
                [
                    "enumerate",
                    str(path),
                    "--alpha",
                    "3",
                    "-k",
                    "1",
                    "--model",
                    "balanced",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        direct = MSCE(
            SignedGraph(PAPER_EDGES), AlphaK(3.0, 1), model="balanced"
        ).enumerate_all()
        assert [frozenset(entry["nodes"]) for entry in payload] == _nodes(direct)

    def test_cli_enumerate_balanced_parallel(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io import write_signed_edgelist

        path = tmp_path / "paper.txt"
        write_signed_edgelist(SignedGraph(PAPER_EDGES), path)
        assert (
            main(
                [
                    "enumerate",
                    str(path),
                    "--alpha",
                    "3",
                    "-k",
                    "1",
                    "--model",
                    "balanced",
                    "--workers",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        direct = MSCE(
            SignedGraph(PAPER_EDGES), AlphaK(3.0, 1), model="balanced"
        ).enumerate_all()
        assert [frozenset(entry["nodes"]) for entry in payload] == _nodes(direct)

    def test_http_cliques_route_model_parameter(self):
        from repro.net import ServerConfig
        from repro.testing.chaos import ServerHarness

        graph = SignedGraph(PAPER_EDGES)
        direct_balanced = MSCE(graph, AlphaK(3.0, 1), model="balanced").enumerate_all()
        direct_msce = MSCE(graph, AlphaK(3.0, 1)).enumerate_all()
        with ServerHarness({"g": graph}, config=ServerConfig(port=0)) as h:
            balanced = h.get("/v1/graphs/g/cliques?alpha=3&k=1&model=balanced")
            assert balanced.status == 200
            payload = balanced.json()
            assert payload["params"]["model"] == "balanced"
            assert sorted(frozenset(c["nodes"]) for c in payload["cliques"]) == sorted(
                _nodes(direct_balanced)
            )

            msce = h.get("/v1/graphs/g/cliques?alpha=3&k=1").json()
            assert msce["params"]["model"] == "msce"
            assert sorted(frozenset(c["nodes"]) for c in msce["cliques"]) == sorted(
                _nodes(direct_msce)
            )

            bad = h.get("/v1/graphs/g/cliques?alpha=3&k=1&model=bogus")
            assert bad.status == 400
            assert bad.json()["error"]["code"] == "bad_params"

            top = h.get(
                "/v1/graphs/g/cliques?alpha=3&k=1&mode=top&r=2&model=balanced"
            ).json()
            assert top["params"]["model"] == "balanced"
            assert sorted(frozenset(c["nodes"]) for c in top["cliques"]) == sorted(
                _nodes(direct_balanced)[:2]
            )


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------
graph_specs = st.integers(min_value=2, max_value=8).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.sampled_from([0, 0, 1, 1, -1, -1]),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        ),
    )
)

tau_specs = st.integers(min_value=0, max_value=2)


def _build(spec) -> SignedGraph:
    n, signs = spec
    graph = SignedGraph(nodes=range(n))
    for (u, v), sign in zip(itertools.combinations(range(n), 2), signs):
        if sign:
            graph.add_edge(u, v, sign)
    return graph


@settings(max_examples=80, deadline=None)
@given(graph_specs, tau_specs)
def test_hypothesis_balanced_matches_oracle(spec, tau):
    graph = _build(spec)
    params = AlphaK(1.0, tau)
    constraint = make_constraint("balanced", params)
    expected = _nodes(brute_force_constraint(graph, constraint))
    pure = MSCE(graph, params, model="balanced", audit=True).enumerate_all()
    fast = MSCE(
        compile_graph(graph), params, model="balanced", audit=True
    ).enumerate_all()
    assert _nodes(pure) == expected
    assert _nodes(fast) == expected
    assert pure.stats.as_dict() == fast.stats.as_dict()


@settings(max_examples=60, deadline=None)
@given(graph_specs, tau_specs)
def test_hypothesis_reported_cliques_are_balanced_and_maximal(spec, tau):
    graph = _build(spec)
    params = AlphaK(1.0, tau)
    constraint = make_constraint("balanced", params)
    maxtest = constraint.make_maxtest("exact")
    result = MSCE(graph, params, model="balanced").enumerate_all()
    seen = set()
    for clique in result.cliques:
        assert clique.nodes not in seen  # no duplicates
        seen.add(clique.nodes)
        assert is_balanced_clique(graph, clique.nodes, tau)
        assert maxtest(graph, clique.nodes, params)


@settings(max_examples=40, deadline=None)
@given(spec=graph_specs, tau=tau_specs)
def test_hypothesis_serve_cache_round_trips_balanced(tmp_path_factory, spec, tau):
    graph = _build(spec)
    tmp = tmp_path_factory.mktemp("models-cache")
    engine = SignedCliqueEngine(graph, cache_dir=tmp)
    cold = engine.enumerate_with_stats(1.0, tau, model="balanced")
    warm = engine.enumerate_with_stats(1.0, tau, model="balanced")
    assert _nodes(warm) == _nodes(cold)
    assert warm.stats.as_dict() == cold.stats.as_dict()
    restarted = SignedCliqueEngine(graph, cache_dir=tmp)
    disk = restarted.enumerate_with_stats(1.0, tau, model="balanced")
    assert restarted.counters["computes"] == 0
    assert _nodes(disk) == _nodes(cold)
    assert disk.stats.as_dict() == cold.stats.as_dict()
