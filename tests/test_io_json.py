"""Unit tests for JSON (de)serialisation of graphs and clique results."""

import json

import pytest

from repro.core import AlphaK, SignedClique
from repro.exceptions import ParseError
from repro.io import (
    cliques_to_dict,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_cliques,
    save_graph,
)


class TestGraphJson:
    def test_round_trip(self, paper_graph, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(paper_graph, path)
        assert load_graph(path) == paper_graph

    def test_dict_shape(self, paper_graph):
        payload = graph_to_dict(paper_graph)
        assert payload["directed"] is False
        assert len(payload["nodes"]) == 8
        assert len(payload["edges"]) == 17
        json.dumps(payload)  # must be JSON-serialisable

    def test_isolated_nodes_survive(self):
        from repro.graphs import SignedGraph

        graph = SignedGraph(nodes=["x"])
        assert graph_from_dict(graph_to_dict(graph)).has_node("x")

    def test_bad_payload_rejected(self):
        with pytest.raises(ParseError):
            graph_from_dict({"nodes": []})
        with pytest.raises(ParseError):
            graph_from_dict({"edges": [[1, 2]]})


class TestCliqueJson:
    def test_cliques_payload(self, paper_graph, tmp_path):
        params = AlphaK(3, 1)
        clique = SignedClique.from_nodes(paper_graph, {1, 2, 3, 4, 5}, params)
        payload = cliques_to_dict([clique])
        assert payload["alpha"] == 3
        assert payload["k"] == 1
        assert payload["cliques"][0]["nodes"] == [1, 2, 3, 4, 5]
        assert payload["cliques"][0]["negative_edges"] == 1
        path = tmp_path / "cliques.json"
        save_cliques([clique], path)
        assert json.loads(path.read_text())["cliques"][0]["positive_edges"] == 9

    def test_empty_clique_list(self):
        assert cliques_to_dict([]) == {"cliques": []}
