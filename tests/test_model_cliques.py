"""Unit tests for Definition-1 predicates and the SignedClique value object."""

import pytest

from repro.core import (
    AlphaK,
    SignedClique,
    filter_maximal_sets,
    is_alpha_k_clique,
    sort_cliques,
    top_r,
    violates_clique_constraint,
    violates_negative_constraint,
    violates_positive_constraint,
)
from repro.exceptions import GraphError


PARAMS_31 = AlphaK(3, 1)
PARAMS_30 = AlphaK(3, 0)


class TestConstraintPredicates:
    def test_example1_31_clique(self, paper_graph):
        # Example 1: {v1..v5} is a (3,1)-clique.
        assert is_alpha_k_clique(paper_graph, {1, 2, 3, 4, 5}, PARAMS_31)

    def test_example1_30_violation(self, paper_graph):
        # With k=0, v2 (and v3) violate the negative-edge constraint.
        members = {1, 2, 3, 4, 5}
        witness = violates_negative_constraint(paper_graph, members, PARAMS_30)
        assert witness in (2, 3)
        assert not is_alpha_k_clique(paper_graph, members, PARAMS_30)

    def test_example1_30_subcliques(self, paper_graph):
        assert is_alpha_k_clique(paper_graph, {1, 2, 4, 5}, PARAMS_30)
        assert is_alpha_k_clique(paper_graph, {1, 3, 4, 5}, PARAMS_30)

    def test_clique_constraint_witness(self, paper_graph):
        assert violates_clique_constraint(paper_graph, {1, 2, 3, 4, 5}) is None
        assert violates_clique_constraint(paper_graph, {1, 8}) in (1, 8)

    def test_positive_constraint_witness(self, paper_graph):
        # {v5, v6, v7} is a clique but each member has only 2 positive
        # internal neighbours < ceil(3 * 1) = 3.
        witness = violates_positive_constraint(paper_graph, {5, 6, 7}, PARAMS_31)
        assert witness in {5, 6, 7}

    def test_positive_constraint_vacuous_when_threshold_zero(self, paper_graph):
        assert violates_positive_constraint(paper_graph, {6, 8}, PARAMS_30) is None

    def test_empty_set_not_a_clique(self, paper_graph):
        assert not is_alpha_k_clique(paper_graph, set(), PARAMS_30)

    def test_unknown_members_rejected(self, paper_graph):
        assert not is_alpha_k_clique(paper_graph, {1, 42}, PARAMS_30)


class TestSignedClique:
    def test_from_nodes_counts_edges(self, paper_graph):
        clique = SignedClique.from_nodes(paper_graph, {1, 2, 3, 4, 5}, PARAMS_31)
        assert clique.size == 5
        assert clique.positive_edges == 9
        assert clique.negative_edges == 1
        assert clique.internal_edges == 10
        assert clique.negative_fraction == pytest.approx(0.1)

    def test_verify_accepts_valid(self, paper_graph):
        clique = SignedClique.from_nodes(paper_graph, {1, 2, 3, 4, 5}, PARAMS_31)
        clique.verify(paper_graph)

    def test_verify_rejects_invalid(self, paper_graph):
        bogus = SignedClique.from_nodes(paper_graph, {1, 2, 3, 4, 5}, PARAMS_30)
        with pytest.raises(GraphError):
            bogus.verify(paper_graph)
        non_clique = SignedClique.from_nodes(paper_graph, {1, 8}, PARAMS_30)
        with pytest.raises(GraphError):
            non_clique.verify(paper_graph)

    def test_container_protocol(self, paper_graph):
        clique = SignedClique.from_nodes(paper_graph, {1, 2, 3}, PARAMS_30)
        assert 1 in clique and 9 not in clique
        assert len(clique) == 3
        assert sorted(clique) == [1, 2, 3]

    def test_sorting_and_top_r(self, paper_graph):
        small = SignedClique.from_nodes(paper_graph, {6, 8}, PARAMS_30)
        big = SignedClique.from_nodes(paper_graph, {1, 2, 4, 5}, PARAMS_30)
        ranked = sort_cliques([small, big])
        assert ranked[0] is big
        assert top_r([small, big], 1) == [big]
        assert top_r([small, big], 5) == [big, small]
        assert top_r([small, big], 0) == []


class TestFilterMaximalSets:
    def test_keeps_only_maximal(self):
        sets = [frozenset({1}), frozenset({1, 2}), frozenset({2, 3}), frozenset({1, 2})]
        kept = filter_maximal_sets(sets)
        assert sorted(kept, key=sorted) == [frozenset({1, 2}), frozenset({2, 3})]

    def test_empty_input(self):
        assert filter_maximal_sets([]) == []

    def test_chain_of_subsets(self):
        chain = [frozenset(range(i)) for i in range(1, 6)]
        assert filter_maximal_sets(chain) == [frozenset(range(5))]
