"""Tests for the (alpha, k) parameter-exploration tooling."""

import pytest

from repro.core import MSCE, AlphaK
from repro.exceptions import ParameterError
from repro.experiments import (
    parameter_map,
    render_parameter_map,
    suggest_parameters,
)


class TestParameterMap:
    def test_counts_match_direct_enumeration(self, paper_graph):
        points = parameter_map(paper_graph, alphas=(3,), ks=(0, 1))
        by_k = {point.k: point for point in points}
        for k in (0, 1):
            expected = MSCE(paper_graph, AlphaK(3, k)).enumerate_all().cliques
            assert by_k[k].clique_count == len(expected)
            assert by_k[k].largest_clique == (expected[0].size if expected else 0)
            assert by_k[k].complete

    def test_empty_mccore_short_circuits(self, paper_graph):
        points = parameter_map(paper_graph, alphas=(10,), ks=(2,))
        point = points[0]
        assert point.mccore_nodes == 0
        assert point.clique_count == 0
        assert point.seconds == 0.0

    def test_grid_shape(self, paper_graph):
        points = parameter_map(paper_graph, alphas=(2, 3), ks=(0, 1, 2))
        assert len(points) == 6
        assert {(p.alpha, p.k) for p in points} == {
            (a, k) for a in (2, 3) for k in (0, 1, 2)
        }

    def test_positive_threshold_property(self, paper_graph):
        point = parameter_map(paper_graph, alphas=(2.5,), ks=(2,))[0]
        assert point.positive_threshold == 5

    def test_empty_grid_rejected(self, paper_graph):
        with pytest.raises(ParameterError):
            parameter_map(paper_graph, alphas=(), ks=(1,))

    def test_max_results_marks_incomplete(self, paper_graph):
        points = parameter_map(paper_graph, alphas=(3,), ks=(0,), max_results=2)
        assert not points[0].complete
        assert points[0].clique_count == 2


class TestRendering:
    def test_render_contains_counts(self, paper_graph):
        points = parameter_map(paper_graph, alphas=(3,), ks=(0, 1))
        text = render_parameter_map(points)
        assert "alpha\\k" in text
        assert str(points[0].clique_count) in text

    def test_capped_points_flagged(self, paper_graph):
        points = parameter_map(paper_graph, alphas=(3,), ks=(0,), max_results=1)
        assert "+" in render_parameter_map(points)


class TestSuggestion:
    def test_picks_strictest_viable(self, paper_graph):
        points = parameter_map(paper_graph, alphas=(2, 3), ks=(0, 1))
        best = suggest_parameters(points, min_count=1)
        assert best is not None
        # (3, 1) yields exactly one clique and has the highest threshold.
        assert (best.alpha, best.k) == (3, 1)

    def test_count_window(self, paper_graph):
        points = parameter_map(paper_graph, alphas=(3,), ks=(0, 1))
        best = suggest_parameters(points, min_count=2)
        assert best is not None and best.k == 0  # k=0 yields 6 cliques

    def test_none_when_nothing_fits(self, paper_graph):
        points = parameter_map(paper_graph, alphas=(10,), ks=(2,))
        assert suggest_parameters(points, min_count=1) is None
