"""Unit tests for the MSCE branch-and-bound enumerator (Algorithm 4)."""

import itertools
import random

import pytest

from repro.algorithms import maximal_cliques
from repro.core import MSCE, AlphaK, enumerate_signed_cliques
from repro.exceptions import ParameterError
from repro.graphs import SignedGraph
from tests.conftest import make_random_signed_graph


class TestPaperExample:
    def test_unique_31_clique(self, paper_graph):
        result = MSCE(paper_graph, AlphaK(3, 1), audit=True).enumerate_all()
        assert [sorted(c.nodes) for c in result.cliques] == [[1, 2, 3, 4, 5]]
        assert result.stats.components == 1
        assert not result.timed_out and not result.truncated

    def test_30_cliques_match_example1(self, paper_graph):
        result = MSCE(paper_graph, AlphaK(3, 0), audit=True).enumerate_all()
        found = {frozenset(c.nodes) for c in result.cliques}
        # Example 1 lists the two 4-cliques; the literal Definition 2
        # additionally admits the smaller maximal positive cliques.
        assert frozenset({1, 2, 4, 5}) in found
        assert frozenset({1, 3, 4, 5}) in found


class TestDegenerateRegimes:
    def test_alpha_zero_k_dmax_equals_classic_cliques(self):
        # Section II: alpha=0, k=d-_max degenerates to classic maximal
        # clique enumeration.
        rng = random.Random(51)
        for _ in range(20):
            graph = make_random_signed_graph(rng)
            params = AlphaK(0, graph.max_negative_degree())
            ours = {c.nodes for c in MSCE(graph, params, audit=True).enumerate_all().cliques}
            classic = {frozenset(c) for c in maximal_cliques(graph, sign="all")}
            assert ours == classic

    def test_k_zero_equals_positive_cliques(self):
        # (alpha, 0)-cliques are exactly the maximal cliques of G+.
        rng = random.Random(52)
        for _ in range(20):
            graph = make_random_signed_graph(rng)
            params = AlphaK(3, 0)
            ours = {c.nodes for c in MSCE(graph, params, audit=True).enumerate_all().cliques}
            positive = {frozenset(c) for c in maximal_cliques(graph, sign="positive")}
            assert ours == positive


class TestSelectionStrategies:
    @pytest.mark.parametrize("selection", ["greedy", "random", "first"])
    def test_all_strategies_same_answer(self, paper_graph, selection):
        result = MSCE(paper_graph, AlphaK(3, 1), selection=selection, audit=True).enumerate_all()
        assert [sorted(c.nodes) for c in result.cliques] == [[1, 2, 3, 4, 5]]

    def test_random_strategy_deterministic_per_seed(self):
        rng = random.Random(53)
        graph = make_random_signed_graph(rng, n_range=(8, 12))
        params = AlphaK(1, 1)
        first = MSCE(graph, params, selection="random", seed=9).enumerate_all()
        second = MSCE(graph, params, selection="random", seed=9).enumerate_all()
        assert [c.nodes for c in first.cliques] == [c.nodes for c in second.cliques]

    def test_unknown_strategy_rejected(self, paper_graph):
        with pytest.raises(ParameterError):
            MSCE(paper_graph, AlphaK(3, 1), selection="psychic")


class TestRunControls:
    def test_max_results_truncates(self):
        rng = random.Random(54)
        graph = make_random_signed_graph(rng, n_range=(10, 12), edge_probability_range=(0.7, 0.9))
        params = AlphaK(1, 1)
        full = MSCE(graph, params).enumerate_all()
        if len(full.cliques) < 3:
            pytest.skip("graph too sparse for truncation test")
        capped = MSCE(graph, params, max_results=2).enumerate_all()
        assert len(capped.cliques) == 2
        assert capped.truncated and not capped.timed_out

    def test_time_limit_flag(self, paper_graph):
        result = MSCE(paper_graph, AlphaK(3, 1), time_limit=1e-9).enumerate_all()
        assert result.timed_out

    def test_result_iteration_protocol(self, paper_graph):
        result = MSCE(paper_graph, AlphaK(3, 1)).enumerate_all()
        assert len(result) == 1
        assert [c.size for c in result] == [5]


class TestPruningAblations:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"core_pruning": False},
            {"negative_pruning": False},
            {"clique_pruning": False},
            {"core_pruning": False, "negative_pruning": False, "clique_pruning": False},
        ],
    )
    def test_disabling_rules_keeps_answers(self, overrides):
        rng = random.Random(55)
        for _ in range(10):
            graph = make_random_signed_graph(rng, n_range=(4, 9))
            params = AlphaK(rng.choice([1, 2]), rng.choice([0, 1, 2]))
            reference = {c.nodes for c in MSCE(graph, params).enumerate_all().cliques}
            ablated = {
                c.nodes
                for c in MSCE(graph, params, audit=True, **overrides).enumerate_all().cliques
            }
            assert ablated == reference

    def test_rules_reduce_recursions(self):
        rng = random.Random(56)
        graph = make_random_signed_graph(rng, n_range=(11, 13), edge_probability_range=(0.6, 0.8))
        params = AlphaK(2, 1)
        with_rules = MSCE(graph, params).enumerate_all()
        without = MSCE(graph, params, core_pruning=False, negative_pruning=False).enumerate_all()
        assert with_rules.stats.recursions <= without.stats.recursions


class TestStats:
    def test_counters_populated(self):
        rng = random.Random(57)
        graph = make_random_signed_graph(rng, n_range=(10, 13), edge_probability_range=(0.6, 0.9))
        params = AlphaK(1.5, 1)
        result = MSCE(graph, params).enumerate_all()
        stats = result.stats.as_dict()
        assert stats["recursions"] >= 1
        assert stats["maximal_found"] == len(result.cliques)
        assert result.elapsed_seconds >= 0

    def test_paper_stats_shape(self, paper_graph):
        result = MSCE(paper_graph, AlphaK(3, 1)).enumerate_all()
        assert result.stats.early_terminations >= 1
        assert result.stats.maxtests >= 1


class TestConvenienceApi:
    def test_enumerate_signed_cliques(self, paper_graph):
        cliques = enumerate_signed_cliques(paper_graph, alpha=3, k=1)
        assert [sorted(c.nodes) for c in cliques] == [[1, 2, 3, 4, 5]]

    def test_isolated_graph(self):
        graph = SignedGraph(nodes=[1, 2, 3])
        assert enumerate_signed_cliques(graph, alpha=2, k=1) == []


class TestEnumerateSeeded:
    def test_full_space_empty_seed_equals_enumerate_all(self):
        rng = random.Random(58)
        for _ in range(20):
            graph = make_random_signed_graph(rng)
            params = AlphaK(rng.choice([1, 1.5, 2]), rng.choice([0, 1, 2]))
            full = {c.nodes for c in MSCE(graph, params).enumerate_all().cliques}
            seeded = {
                c.nodes
                for c in MSCE(graph, params)
                .enumerate_seeded(graph.node_set(), frozenset())
                .cliques
            }
            assert seeded == full

    def test_restricted_space_returns_global_maximal_only(self, paper_graph):
        params = AlphaK(3, 0)
        # {1, 2, 4, 5} is maximal; its subsets inside the space are not.
        result = MSCE(paper_graph, params).enumerate_seeded({1, 2, 4, 5}, frozenset())
        assert {frozenset(c.nodes) for c in result.cliques} == {frozenset({1, 2, 4, 5})}
        # A space holding only a non-maximal clique yields nothing.
        result = MSCE(paper_graph, params).enumerate_seeded({1, 2, 4}, frozenset())
        assert result.cliques == []

    def test_empty_space(self, paper_graph):
        result = MSCE(paper_graph, AlphaK(3, 1)).enumerate_seeded(set(), frozenset())
        assert result.cliques == [] and not result.timed_out


class TestMinSizeFloor:
    def test_min_size_filters_and_prunes(self):
        rng = random.Random(59)
        graph = make_random_signed_graph(rng, n_range=(10, 13))
        params = AlphaK(1, 1)
        full = MSCE(graph, params).enumerate_all()
        floored = MSCE(graph, params, min_size=4).enumerate_all()
        assert {c.nodes for c in floored.cliques} == {
            c.nodes for c in full.cliques if c.size >= 4
        }
        assert floored.stats.recursions <= full.stats.recursions

    def test_invalid_min_size(self, paper_graph):
        with pytest.raises(ParameterError):
            MSCE(paper_graph, AlphaK(3, 1), min_size=0)

    def test_api_exposes_min_size(self, paper_graph):
        cliques = enumerate_signed_cliques(paper_graph, alpha=3, k=0, min_size=4)
        assert all(c.size >= 4 for c in cliques)
        assert len(cliques) == 2
