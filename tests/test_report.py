"""Tests for the markdown evaluation-report generator."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.report import generate_report


class TestGenerateReport:
    def test_small_report(self, tmp_path):
        path = tmp_path / "report.md"
        text = generate_report(path, sections=("table1", "fig6_mechanism"))
        assert path.read_text() == text
        assert "# Signed clique search" in text
        assert "## table1" in text
        assert "## fig6_mechanism" in text
        assert "Table I" in text

    def test_returns_without_writing(self):
        text = generate_report(path=None, sections=("table1",))
        assert "Table I" in text

    def test_unknown_section_rejected_before_running(self):
        with pytest.raises(ExperimentError):
            generate_report(sections=("table1", "fig99"))
