"""Unit tests for the Core, SignedCore and TClique baselines."""

import random

import pytest

from repro.algorithms import maximal_cliques
from repro.baselines import (
    core_communities,
    signed_core,
    signed_core_communities,
    tclique_communities,
    top_r_core_communities,
    top_r_signed_core_communities,
    top_r_tcliques,
)
from repro.core import AlphaK
from repro.exceptions import ParameterError
from repro.graphs import SignedGraph
from tests.conftest import make_random_signed_graph


class TestCoreModel:
    def test_paper_example(self, paper_graph):
        communities = core_communities(paper_graph, AlphaK(3, 1))
        # The positive 3-core is {v1..v7}; connected via positive edges.
        assert communities == [{1, 2, 3, 4, 5, 6, 7}]

    def test_empty_when_threshold_too_high(self, paper_graph):
        assert core_communities(paper_graph, AlphaK(9, 1)) == []

    def test_top_r(self, paper_graph):
        assert top_r_core_communities(paper_graph, AlphaK(3, 1), 5) == [
            {1, 2, 3, 4, 5, 6, 7}
        ]

    def test_components_split_on_positive_edges_only(self):
        graph = SignedGraph(
            [(1, 2, "+"), (2, 3, "+"), (1, 3, "+"), (4, 5, "+"), (5, 6, "+"), (4, 6, "+"),
             (3, 4, "-")]
        )
        communities = core_communities(graph, AlphaK(2, 1))
        assert len(communities) == 2


class TestSignedCore:
    def test_definition_on_result(self):
        rng = random.Random(81)
        for _ in range(25):
            graph = make_random_signed_graph(rng)
            beta, gamma = rng.randint(0, 3), rng.randint(0, 2)
            members = signed_core(graph, beta, gamma)
            for node in members:
                assert len(graph.positive_neighbors(node) & members) >= beta
                assert len(graph.negative_neighbors(node) & members) >= gamma

    def test_maximality(self):
        rng = random.Random(82)
        graph = make_random_signed_graph(rng, n_range=(8, 12))
        members = signed_core(graph, 2, 1)
        # No single outside node can satisfy both constraints against
        # the fixpoint (otherwise peeling removed it wrongly).
        for node in graph.node_set() - members:
            extended = members | {node}
            satisfiable = all(
                len(graph.positive_neighbors(v) & extended) >= 2
                and len(graph.negative_neighbors(v) & extended) >= 1
                for v in extended
            )
            assert not satisfiable

    def test_gamma_zero_equals_positive_core(self, paper_graph):
        from repro.algorithms import k_core

        assert signed_core(paper_graph, 3, 0) == k_core(paper_graph, 3, sign="positive")

    def test_requires_negative_neighbors(self, paper_graph):
        # gamma=1 forces internal conflict; the paper example has only
        # two negative edges, far too few.
        assert signed_core(paper_graph, 3, 1) == set()

    def test_invalid_parameters(self, paper_graph):
        with pytest.raises(ParameterError):
            signed_core(paper_graph, -1, 0)

    def test_communities_use_paper_parameter_matching(self, paper_graph):
        assert signed_core_communities(paper_graph, AlphaK(3, 1)) == []
        assert top_r_signed_core_communities(paper_graph, AlphaK(3, 0), 2) != []


class TestTClique:
    def test_matches_positive_maximal_cliques(self, paper_graph):
        expected = {
            frozenset(c)
            for c in maximal_cliques(paper_graph, sign="positive")
            if len(c) >= 2
        }
        assert set(tclique_communities(paper_graph)) == expected

    def test_sorted_largest_first(self, paper_graph):
        sizes = [len(c) for c in tclique_communities(paper_graph)]
        assert sizes == sorted(sizes, reverse=True)

    def test_min_size_filter(self, paper_graph):
        for community in tclique_communities(paper_graph, min_size=4):
            assert len(community) >= 4

    def test_top_r(self, paper_graph):
        top = top_r_tcliques(paper_graph, 2)
        assert len(top) == 2
        assert len(top[0]) == 4

    def test_limit_cap(self, paper_graph):
        capped = tclique_communities(paper_graph, limit=3)
        assert len(capped) == 3


class TestSignedCoreDecomposition:
    def test_levels_consistent_with_cores(self, paper_graph):
        from repro.baselines import signed_core_decomposition

        levels = signed_core_decomposition(paper_graph, gamma=0)
        for node, beta in levels.items():
            assert beta >= 0  # gamma=0 admits every node at beta=0
            assert node in signed_core(paper_graph, beta, 0)
            assert node not in signed_core(paper_graph, beta + 1, 0)

    def test_gamma_one_excludes_conflict_free_nodes(self, paper_graph):
        from repro.baselines import signed_core_decomposition

        levels = signed_core_decomposition(paper_graph, gamma=1)
        # Exactly the endpoints of the two negative edges ((2,3) and
        # (7,8)) can satisfy gamma=1; the positive requirement then
        # fails at beta=1 (e.g. node 8 has no positive neighbour left).
        assert {node for node, beta in levels.items() if beta >= 0} == {2, 3, 7, 8}
        assert levels[1] == -1

    def test_max_beta(self, paper_graph):
        from repro.baselines import max_signed_core_beta

        assert max_signed_core_beta(paper_graph, gamma=0) == 3  # positive 3-core
        assert max_signed_core_beta(paper_graph, gamma=2) == -1

    def test_invalid_gamma(self, paper_graph):
        from repro.baselines import signed_core_decomposition

        with pytest.raises(ParameterError):
            signed_core_decomposition(paper_graph, gamma=-1)
