"""The paper's worked examples (Fig. 1, Examples 1-7) end to end.

One test per example keeps the reproduction honest: every concrete
number the paper derives from its running example is asserted here.
"""

from repro.algorithms import ego_triangle_degree, icore
from repro.core import (
    MSCE,
    AlphaK,
    is_alpha_k_clique,
    mccore_basic,
    mccore_new,
    positive_core_reduction,
)


class TestExample1:
    def test_31_clique(self, paper_graph):
        params = AlphaK(3, 1)
        assert is_alpha_k_clique(paper_graph, {1, 2, 3, 4, 5}, params)
        result = MSCE(paper_graph, params, audit=True).enumerate_all()
        assert [sorted(c.nodes) for c in result.cliques] == [[1, 2, 3, 4, 5]]

    def test_30_cliques(self, paper_graph):
        params = AlphaK(3, 0)
        assert not is_alpha_k_clique(paper_graph, {1, 2, 3, 4, 5}, params)
        found = {frozenset(c.nodes) for c in MSCE(paper_graph, params).enumerate_all().cliques}
        assert frozenset({1, 2, 4, 5}) in found
        assert frozenset({1, 3, 4, 5}) in found


class TestExample2:
    def test_positive_core_prunes_v8(self, paper_graph):
        survivors = positive_core_reduction(paper_graph, AlphaK(3, 1))
        assert survivors == {1, 2, 3, 4, 5, 6, 7}
        assert 8 not in survivors


class TestExample3And4:
    def test_mccore_prunes_v6_v7_v8(self, paper_graph):
        assert mccore_basic(paper_graph, AlphaK(3, 1)) == {1, 2, 3, 4, 5}


class TestExample5:
    def test_ego_networks(self, paper_graph):
        assert paper_graph.positive_neighbors(2) == {1, 4, 5, 7}
        ego_v2 = paper_graph.induced_positive_neighborhood(2)
        assert ego_v2.node_set() == {1, 4, 5, 7}
        ego_v5 = paper_graph.induced_positive_neighborhood(5)
        assert 2 in ego_v5.node_set() and 6 in ego_v5.node_set()


class TestExample6:
    def test_delta_asymmetry(self, paper_graph):
        assert ego_triangle_degree(paper_graph, 2, 5) == 3
        assert ego_triangle_degree(paper_graph, 5, 2) == 4
        assert ego_triangle_degree(paper_graph, 2, 5) != ego_triangle_degree(paper_graph, 5, 2)

    def test_the_three_ego_triangles_of_v2(self, paper_graph):
        # (v2,v1,v5), (v2,v4,v5), (v2,v5,v7) close the edge (v2, v5).
        closers = paper_graph.positive_neighbors(2) & paper_graph.neighbors(5)
        assert closers == {1, 4, 7}


class TestExample7:
    def test_mcnew_initial_deltas(self, paper_graph):
        # Algorithm 3 computes deltas inside the positive 3-core
        # R = {v1..v7}; the paper lists six directed positive edges with
        # delta = 1 there.
        core = {1, 2, 3, 4, 5, 6, 7}
        expected_low = {(7, 2), (7, 6), (6, 7), (6, 3), (2, 7), (3, 6)}
        for u, v in expected_low:
            assert ego_triangle_degree(paper_graph, u, v, within=core) == 1

    def test_mcnew_result(self, paper_graph):
        assert mccore_new(paper_graph, AlphaK(3, 1)) == {1, 2, 3, 4, 5}


class TestAlgorithm1Behaviour:
    def test_icore_flag_semantics(self, paper_graph):
        # ICore(G+, {}, 3) keeps {v1..v7}; fixing v8 fails immediately.
        flag, members = icore(paper_graph, fixed=(), tau=3, sign="positive")
        assert flag and members == {1, 2, 3, 4, 5, 6, 7}
        flag, members = icore(paper_graph, fixed={8}, tau=3, sign="positive")
        assert not flag and members == set()
