"""Unit and property tests for structural-balance analytics."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import SignedGraph
from repro.metrics import (
    balanced_partition,
    frustration_count,
    is_balanced,
    local_search_frustration,
    triangle_sign_census,
)


def _two_camp_graph():
    return SignedGraph([
        (1, 2, "+"), (2, 3, "+"), (1, 3, "+"),
        (4, 5, "+"), (5, 6, "+"), (4, 6, "+"),
        (1, 4, "-"), (2, 5, "-"), (3, 6, "-"),
    ])


class TestBalancedPartition:
    def test_two_camps_detected(self):
        partition = balanced_partition(_two_camp_graph())
        assert partition is not None
        camps = {frozenset(partition[0]), frozenset(partition[1])}
        assert camps == {frozenset({1, 2, 3}), frozenset({4, 5, 6})}

    def test_unbalanced_triangle(self):
        graph = SignedGraph([(1, 2, "+"), (2, 3, "+"), (1, 3, "-")])
        assert balanced_partition(graph) is None
        assert not is_balanced(graph)

    def test_all_positive_is_balanced(self):
        graph = SignedGraph([(1, 2, "+"), (2, 3, "+"), (1, 3, "+")])
        partition = balanced_partition(graph)
        assert partition is not None
        assert partition[1] == set()

    def test_empty_graph_balanced(self):
        assert is_balanced(SignedGraph())

    def test_odd_negative_cycle_unbalanced(self):
        cycle = SignedGraph([(0, 1, "-"), (1, 2, "-"), (2, 0, "-")])
        assert not is_balanced(cycle)

    def test_even_negative_cycle_balanced(self):
        cycle = SignedGraph([(0, 1, "-"), (1, 2, "+"), (2, 3, "-"), (3, 0, "+")])
        assert is_balanced(cycle)


class TestFrustration:
    def test_balanced_graph_has_zero_frustration(self):
        graph = _two_camp_graph()
        partition = balanced_partition(graph)
        assert frustration_count(graph, partition[0]) == 0
        best, _camp = local_search_frustration(graph)
        assert best == 0

    def test_counts_violations(self):
        graph = SignedGraph([(1, 2, "+"), (1, 3, "-")])
        # Partition {1} vs {2, 3}: positive (1,2) crosses (violation),
        # negative (1,3) crosses (fine) -> 1 violation.
        assert frustration_count(graph, {1}) == 1
        # Everyone together: (1,3) negative inside -> 1 violation.
        assert frustration_count(graph, {1, 2, 3}) == 1

    def test_local_search_upper_bounds(self):
        rng = random.Random(121)
        for _ in range(15):
            n = rng.randint(4, 9)
            edges = [
                (u, v, rng.choice([1, -1]))
                for u, v in itertools.combinations(range(n), 2)
                if rng.random() < 0.5
            ]
            graph = SignedGraph(edges, nodes=range(n))
            best, camp = local_search_frustration(graph, seed=1)
            assert best == frustration_count(graph, camp)
            # Exhaustive minimum for tiny graphs.
            exact = min(
                frustration_count(graph, set(subset))
                for size in range(n + 1)
                for subset in itertools.combinations(range(n), size)
            )
            assert best >= exact
            if is_balanced(graph):
                assert best == exact == 0


class TestTriangleCensus:
    def test_census_counts(self, paper_graph):
        census = triangle_sign_census(paper_graph)
        from repro.algorithms import triangle_count

        assert census.total == triangle_count(paper_graph)
        assert 0.0 <= census.balance_ratio <= 1.0

    def test_known_patterns(self):
        graph = SignedGraph([
            (1, 2, "+"), (2, 3, "+"), (1, 3, "+"),   # +++
            (4, 5, "+"), (5, 6, "-"), (4, 6, "-"),   # +--
            (7, 8, "-"), (8, 9, "-"), (7, 9, "-"),   # ---
        ])
        census = triangle_sign_census(graph)
        assert (census.ppp, census.ppm, census.pmm, census.mmm) == (1, 0, 1, 1)
        assert census.balanced == 2

    def test_triangle_free(self):
        census = triangle_sign_census(SignedGraph([(1, 2, "+")]))
        assert census.total == 0 and census.balance_ratio == 1.0


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=2**30),
)
def test_planted_two_camp_graphs_are_balanced(n, seed):
    # Any graph built from a 2-partition with positive-inside /
    # negative-across edges is balanced by construction; the detector
    # must recover a zero-frustration partition.
    rng = random.Random(seed)
    camp = {node: rng.randint(0, 1) for node in range(n)}
    graph = SignedGraph(nodes=range(n))
    for u, v in itertools.combinations(range(n), 2):
        if rng.random() < 0.6:
            graph.add_edge(u, v, 1 if camp[u] == camp[v] else -1)
    partition = balanced_partition(graph)
    assert partition is not None
    assert frustration_count(graph, partition[0]) == 0
