"""Unit tests for signed edge-list parsing and writing."""

import io

import pytest

from repro.exceptions import ParseError
from repro.graphs import NEGATIVE, POSITIVE
from repro.io import (
    iter_signed_edges,
    read_signed_edgelist,
    read_signed_edgelist_string,
    write_signed_edgelist,
)


SNAP_SAMPLE = """\
# Directed graph: soc-sign-sample
# FromNodeId ToNodeId Sign
0 1 1
0 2 -1
2 3 1
"""

KONECT_SAMPLE = """\
% sym signed
1 2 1
2 3 -2.5
"""


class TestParsing:
    def test_snap_style(self):
        graph = read_signed_edgelist_string(SNAP_SAMPLE)
        assert graph.number_of_edges() == 3
        assert graph.sign(0, 2) == NEGATIVE
        assert graph.sign(2, 3) == POSITIVE

    def test_konect_style_weights_take_sign(self):
        graph = read_signed_edgelist_string(KONECT_SAMPLE)
        assert graph.sign(1, 2) == POSITIVE
        assert graph.sign(2, 3) == NEGATIVE

    def test_plus_minus_tokens(self):
        graph = read_signed_edgelist_string("a b +\nb c -\n")
        assert graph.sign("a", "b") == POSITIVE
        assert graph.sign("b", "c") == NEGATIVE

    def test_blank_lines_and_comments_skipped(self):
        graph = read_signed_edgelist_string("\n# c\n% c\n1 2 1\n\n")
        assert graph.number_of_edges() == 1

    def test_self_loops_skipped(self):
        graph = read_signed_edgelist_string("1 1 1\n1 2 1\n")
        assert graph.number_of_edges() == 1

    def test_numeric_nodes_become_ints(self):
        graph = read_signed_edgelist_string("007 8 1\n")
        assert graph.has_edge(7, 8)

    def test_malformed_line_reports_line_number(self):
        with pytest.raises(ParseError) as info:
            list(iter_signed_edges(["1 2 1", "3 4"]))
        assert info.value.line_number == 2

    def test_unparseable_sign(self):
        with pytest.raises(ParseError):
            list(iter_signed_edges(["1 2 maybe"]))

    def test_zero_weight_rejected(self):
        with pytest.raises(ParseError):
            list(iter_signed_edges(["1 2 0"]))

    def test_duplicate_policy_last(self):
        graph = read_signed_edgelist_string("1 2 1\n2 1 -1\n", on_duplicate="last")
        assert graph.sign(1, 2) == NEGATIVE

    def test_duplicate_policy_majority(self):
        text = "1 2 1\n2 1 1\n1 2 -1\n"
        graph = read_signed_edgelist_string(text, on_duplicate="majority")
        assert graph.sign(1, 2) == POSITIVE


class TestRoundTrip:
    def test_path_round_trip(self, tmp_path, paper_graph):
        path = tmp_path / "graph.txt"
        write_signed_edgelist(paper_graph, path, header="toy graph\nsecond line")
        text = path.read_text()
        assert text.startswith("# toy graph\n# second line\n")
        loaded = read_signed_edgelist(path)
        assert loaded == paper_graph

    def test_stream_round_trip(self, paper_graph):
        buffer = io.StringIO()
        write_signed_edgelist(paper_graph, buffer)
        loaded = read_signed_edgelist_string(buffer.getvalue())
        assert loaded == paper_graph

    def test_write_is_deterministic(self, paper_graph):
        first, second = io.StringIO(), io.StringIO()
        write_signed_edgelist(paper_graph, first)
        write_signed_edgelist(paper_graph.copy(), second)
        assert first.getvalue() == second.getvalue()


class TestSignEdgeCases:
    def test_nan_weight_rejected(self):
        with pytest.raises(ParseError):
            list(iter_signed_edges(["1 2 nan"]))

    def test_infinite_weight_takes_sign(self):
        edges = list(iter_signed_edges(["1 2 inf", "3 4 -inf"]))
        assert edges == [(1, 2, 1), (3, 4, -1)]

    def test_extra_columns_ignored(self):
        edges = list(iter_signed_edges(["1 2 -1 1380000000"]))  # KONECT timestamps
        assert edges == [(1, 2, -1)]


class TestGzipSupport:
    def test_gz_round_trip(self, tmp_path, paper_graph):
        path = tmp_path / "graph.txt.gz"
        write_signed_edgelist(paper_graph, path)
        import gzip

        with gzip.open(path, "rt") as handle:
            assert "1 2 1" in handle.read()
        assert read_signed_edgelist(path) == paper_graph
