"""Property-based tests (hypothesis) for the metrics layer."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import SignedGraph
from repro.metrics import (
    average_precision,
    best_match,
    community_stats,
    conductance_breakdown,
    signed_conductance,
)

graph_specs = st.integers(min_value=2, max_value=8).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.sampled_from([0, 1, -1]),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        ),
        st.sets(st.integers(min_value=0, max_value=7)),
    )
)


def _build(spec):
    n, signs, subset = spec
    graph = SignedGraph(nodes=range(n))
    for (u, v), sign in zip(itertools.combinations(range(n), 2), signs):
        if sign:
            graph.add_edge(u, v, sign)
    members = {node for node in subset if node < n}
    return graph, members


@settings(max_examples=80, deadline=None)
@given(graph_specs)
def test_signed_conductance_bounded(spec):
    graph, members = _build(spec)
    value = signed_conductance(graph, members)
    assert -1.0 <= value <= 1.0


@settings(max_examples=80, deadline=None)
@given(graph_specs)
def test_breakdown_terms_bounded_and_consistent(spec):
    graph, members = _build(spec)
    breakdown = conductance_breakdown(graph, members)
    assert 0.0 <= breakdown.positive_term <= 1.0
    assert 0.0 <= breakdown.negative_term <= 1.0
    assert breakdown.signed == breakdown.positive_term - breakdown.negative_term


@settings(max_examples=80, deadline=None)
@given(graph_specs)
def test_conductance_complement_invariant(spec):
    # phi(S) is defined symmetrically in S and V \ S (both cut and the
    # min-volume denominators are complement-invariant).
    graph, members = _build(spec)
    complement = graph.node_set() - members
    assert signed_conductance(graph, members) == signed_conductance(graph, complement)


@settings(max_examples=80, deadline=None)
@given(graph_specs)
def test_community_stats_edge_accounting(spec):
    graph, members = _build(spec)
    stats = community_stats(graph, members)
    # Internal + boundary + external = all edges.
    external = sum(
        1
        for u, v, _s in graph.edges()
        if u not in members and v not in members
    )
    total = stats.internal_edges + stats.boundary_positive + stats.boundary_negative + external
    assert total == graph.number_of_edges()
    assert 0.0 <= stats.density <= 1.0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.sets(st.integers(min_value=0, max_value=9), min_size=1), max_size=4),
    st.lists(st.sets(st.integers(min_value=0, max_value=9), min_size=1), min_size=1, max_size=4),
)
def test_precision_bounded_and_monotone_in_truth(predictions, truth):
    value = average_precision(predictions, truth)
    assert 0.0 <= value <= 1.0
    # Adding a ground-truth complex can only improve the best match.
    extended = truth + [set(range(10))]
    for prediction in predictions:
        assert best_match(prediction, extended).precision >= best_match(
            prediction, truth
        ).precision
