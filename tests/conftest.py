"""Shared fixtures: the paper's running example and random-graph helpers."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.graphs import SignedGraph

#: Fig. 1 of the paper, reconstructed from the narrative:
#: {v1..v5} is a clique with the single internal negative edge (v2, v3);
#: v6/v7 hang off it with positive edges; v8 attaches to v6 (+) and
#: v7 (-). With alpha=3, k=1 the paper derives: positive 3-core =
#: {v1..v7}, MCCore = {v1..v5}, unique maximal (3,1)-clique {v1..v5}.
PAPER_EDGES = [
    (1, 2, "+"), (1, 3, "+"), (1, 4, "+"), (1, 5, "+"),
    (2, 3, "-"), (2, 4, "+"), (2, 5, "+"),
    (3, 4, "+"), (3, 5, "+"),
    (4, 5, "+"),
    (2, 7, "+"), (5, 7, "+"), (6, 7, "+"), (5, 6, "+"), (3, 6, "+"),
    (6, 8, "+"), (7, 8, "-"),
]


@pytest.fixture
def paper_graph() -> SignedGraph:
    """The Fig. 1 running example as a fresh graph."""
    return SignedGraph(PAPER_EDGES)


def make_random_signed_graph(
    rng: random.Random,
    n_range=(4, 11),
    edge_probability_range=(0.2, 0.9),
    negative_probability_range=(0.0, 0.6),
) -> SignedGraph:
    """Small random signed graph for cross-validation tests."""
    n = rng.randint(*n_range)
    p = rng.uniform(*edge_probability_range)
    q = rng.uniform(*negative_probability_range)
    edges = [
        (u, v, -1 if rng.random() < q else 1)
        for u, v in itertools.combinations(range(n), 2)
        if rng.random() < p
    ]
    return SignedGraph(edges, nodes=range(n))
