"""Tests for the Graphviz DOT exporter."""

from repro.graphs import SignedGraph
from repro.io.dot import save_dot, to_dot


class TestToDot:
    def test_sign_styling(self, paper_graph):
        dot = to_dot(paper_graph)
        assert dot.startswith("graph signed {")
        assert dot.rstrip().endswith("}")
        # The negative edge (2, 3) is red/dashed; a positive one is not.
        assert '"2" -- "3" [color=red, style=dashed];' in dot
        assert '"1" -- "2";' in dot

    def test_highlight_groups_colored(self, paper_graph):
        dot = to_dot(paper_graph, highlight=[{1, 2}, {6, 8}])
        assert '"1" [fillcolor=lightblue];' in dot
        assert '"6" [fillcolor=lightgoldenrod];' in dot
        assert '"4";' in dot  # unhighlighted node, default fill

    def test_members_only_restricts(self, paper_graph):
        dot = to_dot(paper_graph, highlight=[{1, 2, 3}], members_only=True)
        assert '"8"' not in dot
        assert '"2" -- "3"' in dot
        assert '"2" -- "7"' not in dot  # boundary edge excluded

    def test_node_labels_quoted(self):
        graph = SignedGraph([('he "x"', "b c", "+")])
        dot = to_dot(graph)
        assert r'"he \"x\""' in dot
        assert '"b c"' in dot

    def test_save_dot(self, paper_graph, tmp_path):
        path = tmp_path / "graph.dot"
        save_dot(paper_graph, path, highlight=[{1, 2, 3, 4, 5}])
        assert path.read_text().startswith("graph signed {")


class TestCliPercolate:
    def test_percolate_command(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io import write_signed_edgelist
        from tests.conftest import PAPER_EDGES

        graph_path = tmp_path / "g.txt"
        write_signed_edgelist(SignedGraph(PAPER_EDGES), graph_path)
        dot_path = tmp_path / "out.dot"
        code = main([
            "percolate", str(graph_path), "--alpha", "3", "-k", "0",
            "--overlap", "2", "--dot", str(dot_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "community #1" in out
        assert dot_path.exists()
