"""Unit and property tests for the dynamic maximal-clique index."""

import random

import pytest

from repro.core import MSCE, AlphaK, DynamicSignedCliqueIndex
from repro.exceptions import GraphError
from repro.graphs import SignedGraph
from tests.conftest import make_random_signed_graph


def _fresh(graph, params):
    return {c.nodes for c in MSCE(graph, params).enumerate_all().cliques}


class TestBasicUpdates:
    def test_initial_state(self, paper_graph):
        index = DynamicSignedCliqueIndex(paper_graph, AlphaK(3, 1))
        assert [sorted(c.nodes) for c in index.cliques()] == [[1, 2, 3, 4, 5]]
        assert len(index) == 1

    def test_graph_is_copied(self, paper_graph):
        index = DynamicSignedCliqueIndex(paper_graph, AlphaK(3, 1))
        index.remove_node(1)
        assert paper_graph.has_node(1)

    def test_edge_addition_extends_clique(self):
        graph = SignedGraph([(1, 2, "+"), (1, 3, "+"), (2, 3, "+")], nodes=[4])
        params = AlphaK(2, 1)
        index = DynamicSignedCliqueIndex(graph, params)
        for other in (1, 2, 3):
            index.add_edge(4, other, "+")
        assert [sorted(c.nodes) for c in index.cliques()] == [[1, 2, 3, 4]]
        assert _fresh(index.graph, params) == {c.nodes for c in index.cliques()}

    def test_edge_removal_splits_clique(self, paper_graph):
        params = AlphaK(3, 1)
        index = DynamicSignedCliqueIndex(paper_graph, params)
        index.remove_edge(1, 2)
        assert _fresh(index.graph, params) == {c.nodes for c in index.cliques()}

    def test_sign_flip(self, paper_graph):
        params = AlphaK(3, 1)
        index = DynamicSignedCliqueIndex(paper_graph, params)
        index.set_sign(2, 3, "+")  # conflict resolved
        assert _fresh(index.graph, params) == {c.nodes for c in index.cliques()}
        index.set_sign(4, 5, "-")  # new conflict
        assert _fresh(index.graph, params) == {c.nodes for c in index.cliques()}

    def test_node_removal(self, paper_graph):
        params = AlphaK(3, 1)
        index = DynamicSignedCliqueIndex(paper_graph, params)
        index.remove_node(1)
        assert _fresh(index.graph, params) == {c.nodes for c in index.cliques()}
        with pytest.raises(GraphError):
            index.remove_node(1)

    def test_add_isolated_node(self, paper_graph):
        index = DynamicSignedCliqueIndex(paper_graph, AlphaK(3, 1))
        before = {c.nodes for c in index.cliques()}
        index.add_node("new")
        assert {c.nodes for c in index.cliques()} == before

    def test_query_helpers(self, paper_graph):
        index = DynamicSignedCliqueIndex(paper_graph, AlphaK(3, 0))
        assert len(index.top_r(2)) == 2
        containing = index.cliques_containing(5)
        assert containing and all(5 in c.nodes for c in containing)

    def test_apply_edits(self, paper_graph):
        params = AlphaK(3, 1)
        index = DynamicSignedCliqueIndex(paper_graph, params)
        index.apply_edits([
            ("flip", 2, 3, "+"),
            ("remove", 6, 8),
            ("add", 1, 6, "+"),
        ])
        assert index.updates_applied == 3
        assert _fresh(index.graph, params) == {c.nodes for c in index.cliques()}

    def test_unknown_edit_operation(self, paper_graph):
        index = DynamicSignedCliqueIndex(paper_graph, AlphaK(3, 1))
        with pytest.raises(GraphError):
            index.apply_edits([("teleport", 1, 2)])


class TestRandomEditScripts:
    def test_matches_fresh_enumeration_throughout(self):
        rng = random.Random(101)
        for trial in range(20):
            graph = make_random_signed_graph(rng, n_range=(5, 10))
            params = AlphaK(rng.choice([0, 1, 1.5, 2]), rng.choice([0, 1, 2]))
            index = DynamicSignedCliqueIndex(graph, params)
            nodes = sorted(graph.nodes())
            for _step in range(10):
                u, v = rng.sample(nodes, 2)
                if not index.graph.has_node(u) or not index.graph.has_node(v):
                    continue
                if index.graph.has_edge(u, v):
                    if rng.random() < 0.5:
                        index.remove_edge(u, v)
                    else:
                        index.set_sign(u, v, -index.graph.sign(u, v))
                else:
                    index.add_edge(u, v, rng.choice([1, -1]))
                assert _fresh(index.graph, params) == {
                    c.nodes for c in index.cliques()
                }, trial
