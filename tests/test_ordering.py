"""Unit tests for degeneracy ordering and peel orders."""

import random

from repro.algorithms import core_numbers, degeneracy_ordering, peel_order_by_positive_degree
from repro.graphs import SignedGraph
from tests.conftest import make_random_signed_graph


class TestDegeneracyOrdering:
    def test_order_covers_all_nodes(self, paper_graph):
        order, _ = degeneracy_ordering(paper_graph)
        assert sorted(order) == sorted(paper_graph.nodes())

    def test_degeneracy_equals_max_core_number(self):
        rng = random.Random(21)
        for _ in range(25):
            graph = make_random_signed_graph(rng)
            _order, degeneracy = degeneracy_ordering(graph)
            numbers = core_numbers(graph)
            assert degeneracy == max(numbers.values(), default=0)

    def test_later_degree_bounded_by_degeneracy(self):
        # Defining property: every node has at most `degeneracy`
        # neighbours later in the ordering.
        rng = random.Random(22)
        for _ in range(15):
            graph = make_random_signed_graph(rng)
            order, degeneracy = degeneracy_ordering(graph)
            position = {node: index for index, node in enumerate(order)}
            for node in order:
                later = sum(
                    1 for neighbor in graph.neighbors(node) if position[neighbor] > position[node]
                )
                assert later <= degeneracy

    def test_empty_graph(self):
        assert degeneracy_ordering(SignedGraph()) == ([], 0)

    def test_positive_sign_mode(self, paper_graph):
        _order, degeneracy = degeneracy_ordering(paper_graph, sign="positive")
        assert degeneracy == 3

    def test_within_scope(self, paper_graph):
        order, degeneracy = degeneracy_ordering(paper_graph, within={1, 2, 3})
        assert sorted(order) == [1, 2, 3]
        assert degeneracy == 2


class TestPeelOrder:
    def test_sorted_by_positive_degree(self, paper_graph):
        order = peel_order_by_positive_degree(paper_graph)
        degrees = [paper_graph.positive_degree(node) for node in order]
        assert degrees == sorted(degrees)
        assert order[0] == 8  # unique minimum (d+ = 1)

    def test_within_scope_uses_scoped_degrees(self, paper_graph):
        order = peel_order_by_positive_degree(paper_graph, within={1, 2, 3})
        assert set(order) == {1, 2, 3}
        # Within {1,2,3}: d+(1)=2, d+(2)=1, d+(3)=1 -> node 1 last.
        assert order[-1] == 1
