"""Unit tests for connected-component extraction."""

from repro.graphs import (
    SignedGraph,
    connected_components,
    is_connected,
    largest_component,
    positive_connected_components,
)


def _two_component_graph() -> SignedGraph:
    return SignedGraph(
        [(1, 2, "+"), (2, 3, "-"), ("a", "b", "+")],
        nodes=["solo"],
    )


class TestConnectedComponents:
    def test_components_partition_nodes(self):
        graph = _two_component_graph()
        components = sorted(connected_components(graph), key=len, reverse=True)
        assert len(components) == 3
        assert {1, 2, 3} in components
        assert {"a", "b"} in components
        assert {"solo"} in components

    def test_negative_edges_connect(self):
        graph = SignedGraph([(1, 2, "-")])
        assert list(connected_components(graph)) == [{1, 2}]

    def test_restricted_to_node_subset(self):
        graph = _two_component_graph()
        components = list(connected_components(graph, nodes={1, 3, "a"}))
        # Without node 2, nodes 1 and 3 are disconnected.
        assert sorted(map(sorted, (set(map(str, c)) for c in components))) is not None
        as_sets = sorted((frozenset(c) for c in components), key=len)
        assert frozenset({1}) in as_sets
        assert frozenset({3}) in as_sets
        assert frozenset({"a"}) in as_sets

    def test_unknown_nodes_ignored(self):
        graph = SignedGraph([(1, 2, "+")])
        components = list(connected_components(graph, nodes={1, 2, 99}))
        assert components == [{1, 2}]

    def test_empty_graph(self):
        assert list(connected_components(SignedGraph())) == []


class TestPositiveComponents:
    def test_negative_edges_do_not_connect(self):
        graph = SignedGraph([(1, 2, "-"), (2, 3, "+")])
        components = sorted(positive_connected_components(graph), key=len, reverse=True)
        assert components[0] == {2, 3}
        assert {1} in components

    def test_restricted_scope(self):
        graph = SignedGraph([(1, 2, "+"), (2, 3, "+")])
        components = list(positive_connected_components(graph, nodes={1, 3}))
        assert sorted(map(len, components)) == [1, 1]


class TestHelpers:
    def test_largest_component(self):
        graph = _two_component_graph()
        assert largest_component(graph) == {1, 2, 3}
        assert largest_component(SignedGraph()) == set()

    def test_is_connected(self):
        assert is_connected(SignedGraph([(1, 2, "+")]))
        assert not is_connected(_two_component_graph())
        assert not is_connected(SignedGraph())
