"""Unit tests for the signed graph reduction (Section III).

Covers the positive-core reduction (Lemma 1), MCBasic (Algorithm 2) and
MCNew (Algorithm 3), including the paper's worked examples and the
containment lemmas cross-checked against brute-force ground truth.
"""

import random

import pytest

from repro.algorithms import has_k_core
from repro.core import (
    AlphaK,
    brute_force_maximal,
    mccore_basic,
    mccore_new,
    positive_core_reduction,
    reduce_graph,
    reduction_components,
    reduction_report,
)
from repro.exceptions import ParameterError
from repro.graphs import SignedGraph
from tests.conftest import make_random_signed_graph

PARAMS_31 = AlphaK(3, 1)


class TestPositiveCoreReduction:
    def test_example2(self, paper_graph):
        # Example 2: the maximal positive-edge 3-core is {v1..v7}; only
        # v8 is pruned at this stage.
        assert positive_core_reduction(paper_graph, PARAMS_31) == {1, 2, 3, 4, 5, 6, 7}

    def test_degenerate_threshold_keeps_all(self, paper_graph):
        assert positive_core_reduction(paper_graph, AlphaK(0, 3)) == paper_graph.node_set()

    def test_lemma1_containment(self):
        # Every maximal (alpha, k)-clique lies inside the positive core.
        rng = random.Random(31)
        for _ in range(30):
            graph = make_random_signed_graph(rng)
            params = AlphaK(rng.choice([1, 1.5, 2]), rng.choice([1, 2]))
            survivors = positive_core_reduction(graph, params)
            for clique in brute_force_maximal(graph, params):
                assert set(clique.nodes) <= survivors


class TestMCCoreAlgorithms:
    def test_example3_and_4_mcbasic(self, paper_graph):
        # Examples 3/4: the MCCore at (3, 1) is exactly {v1..v5}.
        assert mccore_basic(paper_graph, PARAMS_31) == {1, 2, 3, 4, 5}

    def test_example7_mcnew(self, paper_graph):
        assert mccore_new(paper_graph, PARAMS_31) == {1, 2, 3, 4, 5}

    def test_algorithms_agree_on_random_graphs(self):
        rng = random.Random(32)
        for _ in range(60):
            graph = make_random_signed_graph(rng, n_range=(4, 14))
            params = AlphaK(rng.choice([1, 1.5, 2, 3]), rng.choice([0, 1, 2]))
            assert mccore_basic(graph, params) == mccore_new(graph, params)

    def test_mccore_subset_of_positive_core(self):
        rng = random.Random(33)
        for _ in range(20):
            graph = make_random_signed_graph(rng)
            params = AlphaK(2, 1)
            assert mccore_new(graph, params) <= positive_core_reduction(graph, params)

    def test_lemma3_containment(self):
        # Every maximal (alpha, k)-clique lies inside the MCCore.
        rng = random.Random(34)
        for _ in range(30):
            graph = make_random_signed_graph(rng)
            params = AlphaK(rng.choice([1, 2]), rng.choice([1, 2]))
            survivors = mccore_new(graph, params)
            for clique in brute_force_maximal(graph, params):
                assert set(clique.nodes) <= survivors

    def test_neighbor_core_constraint_holds_on_result(self):
        # Definition 3: each survivor's ego network (within the MCCore)
        # contains a (threshold - 1)-core.
        rng = random.Random(35)
        for _ in range(20):
            graph = make_random_signed_graph(rng)
            params = AlphaK(2, 1)
            survivors = mccore_new(graph, params)
            for node in survivors:
                ego = graph.positive_neighbors(node) & survivors
                assert has_k_core(graph, params.core_order, within=ego, sign="all")

    def test_degenerate_parameters(self, paper_graph):
        assert mccore_basic(paper_graph, AlphaK(3, 0)) == paper_graph.node_set()
        assert mccore_new(paper_graph, AlphaK(0, 2)) == paper_graph.node_set()

    def test_empty_result_when_threshold_too_high(self, paper_graph):
        params = AlphaK(10, 1)
        assert mccore_basic(paper_graph, params) == set()
        assert mccore_new(paper_graph, params) == set()

    def test_threshold_one(self):
        # threshold 1 => core order 0: survivors are the positive 1-core.
        graph = SignedGraph([(1, 2, "+"), (3, 4, "-")], nodes=[5])
        params = AlphaK(1, 1)
        assert mccore_basic(graph, params) == {1, 2}
        assert mccore_new(graph, params) == {1, 2}


class TestReductionDispatch:
    def test_methods(self, paper_graph):
        assert reduce_graph(paper_graph, PARAMS_31, "none") == paper_graph.node_set()
        assert reduce_graph(paper_graph, PARAMS_31, "positive-core") == {1, 2, 3, 4, 5, 6, 7}
        assert reduce_graph(paper_graph, PARAMS_31, "mcbasic") == {1, 2, 3, 4, 5}
        assert reduce_graph(paper_graph, PARAMS_31, "mcnew") == {1, 2, 3, 4, 5}

    def test_unknown_method(self, paper_graph):
        with pytest.raises(ParameterError):
            reduce_graph(paper_graph, PARAMS_31, "quantum")

    def test_components(self, paper_graph):
        components = list(reduction_components(paper_graph, PARAMS_31))
        assert components == [{1, 2, 3, 4, 5}]

    def test_report_monotone(self, paper_graph):
        report = reduction_report(paper_graph, PARAMS_31)
        assert report["graph"] >= report["positive-core"] >= report["mcnew"]
        assert report["mcbasic"] == report["mcnew"]
