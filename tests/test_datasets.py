"""Tests for the paper-dataset stand-ins (Table-I profiles and workloads)."""

import pytest

from repro.core import enumerate_signed_cliques
from repro.exceptions import ParameterError
from repro.experiments.registry import clear_cache, get_dataset
from repro.generators import PAPER_DATASETS, load_dataset
from repro.graphs import graph_stats, validate_graph


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestProfiles:
    @pytest.mark.parametrize("name", PAPER_DATASETS + ("flysign",))
    def test_builds_and_validates(self, name):
        dataset = get_dataset(name)
        assert dataset.name == name
        assert dataset.graph.number_of_edges() > 0
        assert dataset.description
        validate_graph(dataset.graph)

    @pytest.mark.parametrize(
        "name, low, high",
        [
            ("slashdot", 0.15, 0.32),   # paper: 23.5% negative
            ("wiki", 0.08, 0.20),       # paper: 11.8%
            ("dblp", 0.50, 0.85),       # paper: 76.8%
            ("youtube", 0.28, 0.32),    # paper recipe: exactly 30%
            ("pokec", 0.28, 0.32),      # paper recipe: exactly 30%
        ],
    )
    def test_negative_fraction_windows(self, name, low, high):
        stats = graph_stats(get_dataset(name).graph)
        assert low <= stats.negative_fraction <= high

    def test_relative_sizes_follow_table1(self):
        # Pokec is the largest and densest; Slashdot the smallest.
        sizes = {name: graph_stats(get_dataset(name).graph) for name in PAPER_DATASETS}
        assert sizes["pokec"].edges == max(s.edges for s in sizes.values())
        assert sizes["slashdot"].nodes == min(s.nodes for s in sizes.values())

    def test_deterministic_generation(self):
        first = load_dataset("slashdot")
        second = load_dataset("slashdot")
        assert first.graph == second.graph

    def test_custom_seed_changes_graph(self):
        default = load_dataset("youtube")
        reseeded = load_dataset("youtube", seed=99)
        assert default.graph != reseeded.graph

    def test_unknown_dataset(self):
        with pytest.raises(ParameterError):
            load_dataset("friendster")

    def test_registry_caches(self):
        assert get_dataset("wiki") is get_dataset("wiki")


class TestWorkloads:
    def test_slashdot_has_cliques_at_paper_default(self):
        graph = get_dataset("slashdot").graph
        cliques = enumerate_signed_cliques(
            graph, alpha=4, k=3, time_limit=60, max_results=20
        )
        assert len(cliques) > 0

    def test_dblp_has_cliques_at_paper_default(self):
        graph = get_dataset("dblp").graph
        cliques = enumerate_signed_cliques(
            graph, alpha=4, k=3, time_limit=60, max_results=20
        )
        assert len(cliques) > 0

    def test_flysign_ground_truth_usable(self):
        dataset = get_dataset("flysign")
        assert dataset.communities
        assert all(len(c) >= 5 for c in dataset.communities)
