"""Unit tests for triangle and ego-triangle primitives (Definition 5, Lemma 4)."""

import random

from repro.algorithms import (
    all_ego_triangle_degrees,
    clustering_coefficient,
    ego_triangle_degree,
    iter_triangles,
    local_triangle_counts,
    triangle_count,
    triangles_per_edge,
)
from repro.graphs import SignedGraph
from tests.conftest import make_random_signed_graph


class TestEgoTriangles:
    def test_example6_delta_values(self, paper_graph):
        # Example 6: delta(v2, v5) = 3 and delta(v5, v2) = 4 — and the
        # two directions genuinely differ.
        assert ego_triangle_degree(paper_graph, 2, 5) == 3
        assert ego_triangle_degree(paper_graph, 5, 2) == 4

    def test_lemma4_delta_equals_ego_network_degree(self, paper_graph):
        # delta(u, v) must equal v's degree inside u's ego network.
        for u in paper_graph.nodes():
            ego = paper_graph.induced_positive_neighborhood(u)
            for v in paper_graph.positive_neighbors(u):
                assert ego_triangle_degree(paper_graph, u, v) == ego.degree(v)

    def test_lemma4_on_random_graphs(self):
        rng = random.Random(11)
        for _ in range(20):
            graph = make_random_signed_graph(rng)
            for u in graph.nodes():
                ego = graph.induced_positive_neighborhood(u)
                for v in graph.positive_neighbors(u):
                    assert ego_triangle_degree(graph, u, v) == ego.degree(v)

    def test_within_restriction(self, paper_graph):
        full = ego_triangle_degree(paper_graph, 5, 2)
        restricted = ego_triangle_degree(paper_graph, 5, 2, within={1, 2, 4, 5})
        assert restricted <= full
        assert ego_triangle_degree(paper_graph, 5, 2, within={5}) == 0

    def test_all_ego_triangle_degrees_both_directions(self, paper_graph):
        deltas = all_ego_triangle_degrees(paper_graph)
        assert deltas[(2, 5)] == 3
        assert deltas[(5, 2)] == 4
        # Every directed positive edge appears.
        positive_pairs = {
            (u, v)
            for u, v in (
                pair
                for edge in paper_graph.positive_edges()
                for pair in (edge, edge[::-1])
            )
        }
        assert set(deltas) == positive_pairs


class TestTriangleEnumeration:
    def test_triangle_count_small(self):
        graph = SignedGraph([(1, 2, "+"), (2, 3, "-"), (1, 3, "+"), (3, 4, "+")])
        assert triangle_count(graph) == 1

    def test_each_triangle_once(self, paper_graph):
        triangles = list(iter_triangles(paper_graph))
        as_sets = [frozenset(t) for t in triangles]
        assert len(as_sets) == len(set(as_sets))

    def test_matches_support_sum(self, paper_graph):
        support = triangles_per_edge(paper_graph)
        assert sum(support.values()) == 3 * triangle_count(paper_graph)

    def test_local_counts_sum(self, paper_graph):
        local = local_triangle_counts(paper_graph)
        assert sum(local.values()) == 3 * triangle_count(paper_graph)


class TestClustering:
    def test_full_triangle(self):
        graph = SignedGraph([(1, 2, "+"), (2, 3, "+"), (1, 3, "+")])
        assert clustering_coefficient(graph, 1) == 1.0

    def test_leaf_node(self):
        graph = SignedGraph([(1, 2, "+")])
        assert clustering_coefficient(graph, 1) == 0.0
