"""Tests for parallel component-level enumeration."""

import itertools
import random

from repro.core import MSCE, AlphaK, enumerate_parallel
from repro.core.parallel import SMALL_COMPONENT, _component_fingerprint
from repro.core.reduction import reduction_components
from repro.fastpath import compile_graph
from repro.graphs import SignedGraph
from tests.conftest import make_random_signed_graph


def _multi_component_graph(seed: int, components: int = 3) -> SignedGraph:
    """Several disjoint random blobs — the parallel-friendly regime."""
    rng = random.Random(seed)
    graph = SignedGraph()
    offset = 0
    for _ in range(components):
        blob = make_random_signed_graph(
            rng, n_range=(30, 40), edge_probability_range=(0.3, 0.5)
        )
        for u, v, sign in blob.edges():
            graph.add_edge(u + offset, v + offset, sign)
        offset += 100
    return graph


class TestParallelEnumeration:
    def test_matches_sequential_on_multi_component_graph(self):
        graph = _multi_component_graph(seed=7)
        params = AlphaK(2, 1)
        sequential = {c.nodes for c in MSCE(graph, params).enumerate_all().cliques}
        parallel = {c.nodes for c in enumerate_parallel(graph, 2, 1, workers=2)}
        assert parallel == sequential

    def test_falls_back_for_single_component(self, paper_graph):
        cliques = enumerate_parallel(paper_graph, 3, 1, workers=4)
        assert [sorted(c.nodes) for c in cliques] == [[1, 2, 3, 4, 5]]

    def test_workers_one_is_sequential(self, paper_graph):
        cliques = enumerate_parallel(paper_graph, 3, 1, workers=1)
        assert len(cliques) == 1

    def test_results_sorted_and_counted(self):
        graph = _multi_component_graph(seed=9)
        cliques = enumerate_parallel(graph, 1.5, 1, workers=2)
        sizes = [c.size for c in cliques]
        assert sizes == sorted(sizes, reverse=True)
        for clique in cliques[:5]:
            rebuilt = sum(
                len(graph.positive_neighbors(n) & clique.nodes) for n in clique.nodes
            ) // 2
            assert clique.positive_edges == rebuilt

    def test_worker_path_matches_sequential_on_reduced_components(self):
        # Two disjoint positive 35-cliques: MCCore keeps both, so the
        # reduced graph has two components above SMALL_COMPONENT and the
        # real multi-process path (not the fallback) is exercised.
        graph = SignedGraph()
        for offset in (0, 100):
            for u, v in itertools.combinations(range(offset, offset + 35), 2):
                graph.add_edge(u, v, 1)
        params = AlphaK(2, 2)
        components = [set(c) for c in reduction_components(graph, params)]
        assert sum(len(c) >= SMALL_COMPONENT for c in components) >= 2
        sequential = {c.nodes for c in MSCE(graph, params).enumerate_all().cliques}
        parallel = {c.nodes for c in enumerate_parallel(graph, 2, 2, workers=2)}
        assert parallel == sequential

    def test_accepts_compiled_graph(self):
        graph = _multi_component_graph(seed=7)
        compiled = compile_graph(graph)
        sequential = {c.nodes for c in MSCE(graph, AlphaK(2, 1)).enumerate_all().cliques}
        parallel = {c.nodes for c in enumerate_parallel(compiled, 2, 1, workers=2)}
        assert parallel == sequential

    def test_random_strategy_same_set(self):
        graph = _multi_component_graph(seed=11)
        params = AlphaK(1.5, 1)
        sequential = {c.nodes for c in MSCE(graph, params).enumerate_all().cliques}
        parallel = {
            c.nodes
            for c in enumerate_parallel(graph, 1.5, 1, workers=2, selection="random")
        }
        assert parallel == sequential


class TestComponentFingerprint:
    def test_order_independent(self):
        assert _component_fingerprint([1, 2, "a"]) == _component_fingerprint(["a", 2, 1])

    def test_stable_across_processes(self):
        # crc32-based, so the value is a fixed function of the labels —
        # unlike builtin str hashing, which PYTHONHASHSEED salts per
        # process and would hand every worker a different RNG seed.
        assert _component_fingerprint(["v1", "v2"]) == 733442
        assert _component_fingerprint(range(5)) == 1835748
        assert _component_fingerprint([]) == 0
