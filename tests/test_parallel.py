"""Tests for parallel component-level enumeration."""

import random

from repro.core import MSCE, AlphaK, enumerate_parallel
from repro.graphs import SignedGraph
from tests.conftest import make_random_signed_graph


def _multi_component_graph(seed: int, components: int = 3) -> SignedGraph:
    """Several disjoint random blobs — the parallel-friendly regime."""
    rng = random.Random(seed)
    graph = SignedGraph()
    offset = 0
    for _ in range(components):
        blob = make_random_signed_graph(
            rng, n_range=(30, 40), edge_probability_range=(0.3, 0.5)
        )
        for u, v, sign in blob.edges():
            graph.add_edge(u + offset, v + offset, sign)
        offset += 100
    return graph


class TestParallelEnumeration:
    def test_matches_sequential_on_multi_component_graph(self):
        graph = _multi_component_graph(seed=7)
        params = AlphaK(2, 1)
        sequential = {c.nodes for c in MSCE(graph, params).enumerate_all().cliques}
        parallel = {c.nodes for c in enumerate_parallel(graph, 2, 1, workers=2)}
        assert parallel == sequential

    def test_falls_back_for_single_component(self, paper_graph):
        cliques = enumerate_parallel(paper_graph, 3, 1, workers=4)
        assert [sorted(c.nodes) for c in cliques] == [[1, 2, 3, 4, 5]]

    def test_workers_one_is_sequential(self, paper_graph):
        cliques = enumerate_parallel(paper_graph, 3, 1, workers=1)
        assert len(cliques) == 1

    def test_results_sorted_and_counted(self):
        graph = _multi_component_graph(seed=9)
        cliques = enumerate_parallel(graph, 1.5, 1, workers=2)
        sizes = [c.size for c in cliques]
        assert sizes == sorted(sizes, reverse=True)
        for clique in cliques[:5]:
            rebuilt = sum(
                len(graph.positive_neighbors(n) & clique.nodes) for n in clique.nodes
            ) // 2
            assert clique.positive_edges == rebuilt

    def test_random_strategy_same_set(self):
        graph = _multi_component_graph(seed=11)
        params = AlphaK(1.5, 1)
        sequential = {c.nodes for c in MSCE(graph, params).enumerate_all().cliques}
        parallel = {
            c.nodes
            for c in enumerate_parallel(graph, 1.5, 1, workers=2, selection="random")
        }
        assert parallel == sequential
