"""Tests for parallel enumeration: fan-out, root branching, stealing.

The determinism tests are the contract of the parallel enumerator: the
clique *list* (order included) and the aggregated ``SearchStats`` must
be bit-identical across worker counts and repeated runs — and, for the
deterministic selection strategies, bit-identical to the sequential
enumerator. The hypothesis test checks the underlying invariant that
makes merging dedup-free: root-branch decomposition *partitions* the
set of maximal cliques across tasks.
"""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MSCE, AlphaK, enumerate_parallel
from repro.core.bbe import SearchStats, frame_draw
from repro.core.parallel import SMALL_COMPONENT
from repro.core.reduction import reduction_components
from repro.fastpath import compile_graph
from repro.fastpath.search import decompose_root
from repro.fastpath.shared import SharedCompiledGraph
from repro.graphs import SignedGraph
from tests.conftest import make_random_signed_graph


def _multi_component_graph(seed: int, components: int = 3) -> SignedGraph:
    """Several disjoint random blobs — the parallel-friendly regime."""
    rng = random.Random(seed)
    graph = SignedGraph()
    offset = 0
    for _ in range(components):
        blob = make_random_signed_graph(
            rng, n_range=(30, 40), edge_probability_range=(0.3, 0.5)
        )
        for u, v, sign in blob.edges():
            graph.add_edge(u + offset, v + offset, sign)
        offset += 100
    return graph


def _fingerprint(result):
    """Everything that must be bit-identical across schedules."""
    return (
        [(c.nodes, c.positive_edges, c.negative_edges) for c in result.cliques],
        result.stats.as_dict(),
    )


class TestParallelEnumeration:
    def test_matches_sequential_on_multi_component_graph(self):
        graph = _multi_component_graph(seed=7)
        params = AlphaK(2, 1)
        sequential = {c.nodes for c in MSCE(graph, params).enumerate_all().cliques}
        parallel = {c.nodes for c in enumerate_parallel(graph, 2, 1, workers=2)}
        assert parallel == sequential

    # Tests asserting absolute MSCE answers pin model="msce" so the
    # suite stays meaningful under a REPRO_MODEL=balanced environment
    # (the relative parallel-vs-sequential contracts are model-generic).
    def test_small_graph_runs_inline(self, paper_graph):
        result = enumerate_parallel(paper_graph, 3, 1, workers=4, model="msce")
        assert [sorted(c.nodes) for c in result] == [[1, 2, 3, 4, 5]]
        # Below SMALL_COMPONENT nothing ships to a worker process.
        assert result.parallel["tasks_seeded"] == 0
        assert result.parallel["inline_components"] == result.stats.components

    def test_workers_one_is_sequential(self, paper_graph):
        cliques = enumerate_parallel(paper_graph, 3, 1, workers=1, model="msce")
        assert len(cliques) == 1

    def test_results_sorted_and_counted(self):
        graph = _multi_component_graph(seed=9)
        cliques = enumerate_parallel(graph, 1.5, 1, workers=2)
        sizes = [c.size for c in cliques]
        assert sizes == sorted(sizes, reverse=True)
        for clique in cliques[:5]:
            rebuilt = sum(
                len(graph.positive_neighbors(n) & clique.nodes) for n in clique.nodes
            ) // 2
            assert clique.positive_edges == rebuilt

    def test_worker_path_matches_sequential_on_reduced_components(self):
        # Two disjoint positive 35-cliques: MCCore keeps both, so the
        # reduced graph has two components above SMALL_COMPONENT and the
        # real multi-process path (not the inline path) is exercised.
        graph = SignedGraph()
        for offset in (0, 100):
            for u, v in itertools.combinations(range(offset, offset + 35), 2):
                graph.add_edge(u, v, 1)
        params = AlphaK(2, 2)
        components = [set(c) for c in reduction_components(graph, params)]
        assert sum(len(c) >= SMALL_COMPONENT for c in components) >= 2
        sequential = {c.nodes for c in MSCE(graph, params).enumerate_all().cliques}
        result = enumerate_parallel(graph, 2, 2, workers=2)
        assert {c.nodes for c in result} == sequential
        assert result.parallel["shared_graph_bytes"] > 0

    def test_accepts_compiled_graph(self):
        graph = _multi_component_graph(seed=7)
        compiled = compile_graph(graph)
        sequential = {c.nodes for c in MSCE(graph, AlphaK(2, 1)).enumerate_all().cliques}
        parallel = {c.nodes for c in enumerate_parallel(compiled, 2, 1, workers=2)}
        assert parallel == sequential

    def test_fully_reduced_graph(self):
        graph = _multi_component_graph(seed=5)
        result = enumerate_parallel(graph, 0.99, 50, workers=2, model="msce")
        assert len(result) == 0
        assert result.stats.components == 0


class TestParallelDeterminism:
    """Satellite 4: bit-identical cliques AND stats across schedules."""

    def test_greedy_identical_across_worker_counts_and_sequential(self):
        graph = _multi_component_graph(seed=13)
        sequential = MSCE(graph, AlphaK(1.5, 1)).enumerate_all()
        expected = _fingerprint(sequential)
        for workers in (1, 2, 4):
            result = enumerate_parallel(
                graph, 1.5, 1, workers=workers, small_component=8, split_component=24
            )
            assert _fingerprint(result) == expected

    def test_random_identical_across_worker_counts_and_repeats(self):
        graph = _multi_component_graph(seed=17)
        fingerprints = [
            _fingerprint(
                enumerate_parallel(
                    graph,
                    1.5,
                    1,
                    workers=workers,
                    selection="random",
                    seed=3,
                    small_component=8,
                    split_component=24,
                    task_budget=50,
                )
            )
            # workers=2 twice: repeated runs must match despite
            # timing-dependent work stealing.
            for workers in (1, 2, 2, 4)
        ]
        assert all(fp == fingerprints[0] for fp in fingerprints)

    def test_heavy_resplitting_changes_nothing(self):
        graph = _multi_component_graph(seed=19, components=1)
        sequential = MSCE(graph, AlphaK(1.5, 1)).enumerate_all()
        result = enumerate_parallel(
            graph, 1.5, 1, workers=2, split_component=16, task_budget=10
        )
        assert _fingerprint(result) == _fingerprint(sequential)
        assert result.parallel["frames_resplit"] > 0
        assert result.parallel["tasks_completed"] == (
            result.parallel["tasks_seeded"] + result.parallel["frames_resplit"]
        )

    def test_frame_draw_is_pure_and_in_range(self):
        reprs = [repr(n) for n in range(10)]
        draw = frame_draw(42, reprs)
        assert draw == frame_draw(42, reprs)
        assert 0 <= draw < len(reprs)
        assert frame_draw(43, reprs) != draw or True  # different seed may differ


class TestSharedCompiledGraph:
    def test_roundtrip_and_search(self):
        graph = make_random_signed_graph(random.Random(23), n_range=(20, 25))
        compiled = compile_graph(graph)
        shared = SharedCompiledGraph.create(compiled)
        try:
            view = SharedCompiledGraph.attach(shared.meta)
            try:
                mirror = view.graph
                assert mirror.nodes == compiled.nodes
                for slot in ("xadj", "pxadj", "nxadj", "adj", "padj", "nadj", "signs"):
                    assert list(getattr(mirror, slot)) == list(getattr(compiled, slot))
                params = AlphaK(1.5, 1)
                expected = MSCE(compiled, params).enumerate_all()
                got = MSCE(mirror, params).enumerate_all()
                assert [c.nodes for c in got.cliques] == [
                    c.nodes for c in expected.cliques
                ]
            finally:
                view.close()
        finally:
            shared.close()
            shared.unlink()

    def test_close_is_idempotent_and_nonowner_unlink_is_noop(self):
        compiled = compile_graph(
            make_random_signed_graph(random.Random(3), n_range=(5, 8))
        )
        shared = SharedCompiledGraph.create(compiled)
        view = SharedCompiledGraph.attach(shared.meta)
        view.graph  # materialise the memoryview exports
        view.unlink()  # non-owner: must not destroy the segment
        view.close()
        view.close()
        reattached = SharedCompiledGraph.attach(shared.meta)  # still alive
        reattached.close()
        shared.close()
        shared.unlink()
        shared.unlink()  # idempotent


class TestExtract:
    def test_extract_matches_recompilation(self):
        rng = random.Random(31)
        for _ in range(10):
            graph = make_random_signed_graph(rng, n_range=(6, 14))
            compiled = compile_graph(graph)
            members = [n for n in graph.nodes() if rng.random() < 0.6]
            mask = compiled.mask_from_nodes(members)
            extracted = compiled.extract(mask)
            induced = SignedGraph(
                [
                    (u, v, sign)
                    for u, v, sign in graph.edges()
                    if u in set(members) and v in set(members)
                ],
                nodes=sorted(members),
            )
            expected = compile_graph(induced)
            assert extracted.nodes == expected.nodes
            for slot in ("xadj", "pxadj", "nxadj", "adj", "padj", "nadj", "signs"):
                assert list(getattr(extracted, slot)) == list(
                    getattr(expected, slot)
                ), slot


class TestRunFrames:
    def test_budget_offload_reaches_fixpoint_with_same_answer(self):
        graph = make_random_signed_graph(
            random.Random(37), n_range=(25, 30), edge_probability_range=(0.4, 0.6)
        )
        compiled = compile_graph(graph)
        params = AlphaK(1.5, 1)
        sequential = MSCE(compiled, params, reduction="none").enumerate_all()
        searcher = MSCE(compiled, params, reduction="none", frame_rng=True)
        frames = [(compiled.full_mask, 0)]
        nodes_seen = []
        counters = {}
        while frames:
            frame = frames.pop()
            result = searcher.run_frames([frame], budget=3, offload=frames.append)
            nodes_seen.extend(c.nodes for c in result.cliques)
            for key, value in result.stats.as_dict().items():
                counters[key] = counters.get(key, 0) + value
        assert sorted(map(sorted, nodes_seen)) == sorted(
            sorted(c.nodes) for c in sequential.cliques
        )
        assert len(nodes_seen) == len(sequential.cliques)  # no duplicates
        for key in ("recursions", "maxtests", "early_terminations"):
            assert counters[key] == getattr(sequential.stats, key)


# -- hypothesis: root-branch decomposition partitions the cliques ------------

graph_specs = st.integers(min_value=2, max_value=9).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.sampled_from([0, 0, 1, 1, 1, -1]),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        ),
    )
)

param_specs = st.tuples(
    st.sampled_from([0, 1, 1.5, 2]),
    st.integers(min_value=0, max_value=2),
)


def _build(spec) -> SignedGraph:
    n, signs = spec
    graph = SignedGraph(nodes=range(n))
    for (u, v), sign in zip(itertools.combinations(range(n), 2), signs):
        if sign:
            graph.add_edge(u, v, sign)
    return graph


@settings(max_examples=60, deadline=None)
@given(graph_specs, param_specs, st.integers(min_value=2, max_value=6))
def test_hypothesis_root_decomposition_partitions_cliques(spec, param_spec, max_tasks):
    """Every maximal clique lands in exactly one bucket: the spine walk
    or one of the root-branch tasks — no duplicates, no misses."""
    graph = _build(spec)
    alpha, k = param_spec
    params = AlphaK(alpha, k)
    compiled = compile_graph(graph)
    sequential = {
        c.nodes for c in MSCE(compiled, params, reduction="none").enumerate_all().cliques
    }
    searcher = MSCE(compiled, params, reduction="none", frame_rng=True)
    stats, found, heap = SearchStats(), {}, []
    tasks = decompose_root(searcher, compiled.full_mask, stats, found, heap, max_tasks)
    assert len(tasks) <= max_tasks
    buckets = [set(found)]
    for task in tasks:
        buckets.append({c.nodes for c in searcher.run_frames([task]).cliques})
    union = set().union(*buckets)
    assert union == sequential  # no misses
    assert sum(len(b) for b in buckets) == len(union)  # no duplicates
