"""Failure-injection and fuzz tests.

Three attack surfaces: the edge-list parser (arbitrary text), the graph
structure (random mutation sequences must never corrupt the internal
indexes), and the enumeration invariants under mutation-then-enumerate
workloads.
"""

import io
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MSCE, AlphaK
from repro.exceptions import ParseError, ReproError
from repro.graphs import SignedGraph, validation_errors
from repro.io import iter_signed_edges, read_signed_edgelist


class TestParserFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=200))
    def test_parser_never_crashes_unexpectedly(self, text):
        # Arbitrary text either parses into a valid graph or raises the
        # library's ParseError — never any other exception.
        try:
            graph = read_signed_edgelist(io.StringIO(text))
        except ParseError:
            return
        assert validation_errors(graph) == []

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
                st.sampled_from(["1", "-1", "+", "-", "2.5", "-0.1"]),
            ),
            max_size=20,
        )
    )
    def test_wellformed_lines_always_parse(self, rows):
        lines = [f"{u} {v} {sign}" for u, v, sign in rows]
        edges = list(iter_signed_edges(lines))
        # Self-loops are dropped; everything else parses with a +-1 sign.
        assert all(sign in (1, -1) or sign in ("+", "-") for _u, _v, sign in edges)


class TestStructuralFuzz:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=2**30))
    def test_random_mutation_scripts_keep_indexes_clean(self, seed):
        rng = random.Random(seed)
        graph = SignedGraph(nodes=range(6))
        for _ in range(40):
            action = rng.random()
            u, v = rng.randrange(8), rng.randrange(8)
            try:
                if action < 0.35:
                    graph.add_edge(u, v, rng.choice([1, -1]))
                elif action < 0.55:
                    graph.set_sign(u, v, rng.choice(["+", "-"]))
                elif action < 0.7:
                    graph.remove_edge(u, v)
                elif action < 0.85:
                    graph.add_node(u)
                else:
                    graph.remove_node(u)
            except ReproError:
                pass  # invalid operations must raise cleanly, not corrupt
            assert validation_errors(graph) == []

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**30))
    def test_enumeration_after_mutation_storm(self, seed):
        rng = random.Random(seed)
        graph = SignedGraph(nodes=range(7))
        for _ in range(30):
            u, v = rng.sample(range(7), 2)
            try:
                if rng.random() < 0.7:
                    graph.set_sign(u, v, rng.choice([1, -1]))
                else:
                    graph.remove_edge(u, v)
            except ReproError:
                pass
        params = AlphaK(rng.choice([1, 2]), rng.choice([0, 1, 2]))
        result = MSCE(graph, params, audit=True).enumerate_all()
        for clique in result.cliques:
            clique.verify(graph)


class TestEngineOracleFuzz:
    """The serving engine vs the one-shot API, under generator fuzz.

    Random generator graphs × an (alpha, k) grid, served through every
    cache tier the engine has — cold compute, memory hit, and the
    post-LRU-eviction disk re-hit — must all equal a fresh
    :func:`repro.core.api.enumerate_with_stats` call, cliques and stats.
    """

    GRID = [(2.0, 1), (2.0, 2), (3.0, 1), (2.5, 2)]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**30))
    def test_random_signed_engine_matches_api(self, seed):
        from repro.core.api import enumerate_with_stats
        from repro.generators import gnp_signed
        from repro.serve import SignedCliqueEngine

        rng = random.Random(seed)
        graph = gnp_signed(
            rng.randrange(8, 26),
            rng.uniform(0.15, 0.45),
            negative_fraction=rng.uniform(0.0, 0.5),
            seed=seed,
        )
        engine = SignedCliqueEngine(graph)
        for alpha, k in self.GRID:
            served = engine.enumerate_with_stats(alpha, k)
            reference = enumerate_with_stats(graph, alpha, k)
            assert served.cliques == reference.cliques, (seed, alpha, k)
            assert served.stats == reference.stats, (seed, alpha, k)
            warm = engine.enumerate_with_stats(alpha, k)
            assert warm.cliques == reference.cliques, (seed, alpha, k, "warm")
            assert warm.stats == reference.stats, (seed, alpha, k, "warm")

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=2**30))
    def test_planted_engine_disk_rehit_after_eviction(self, tmp_path_factory, seed):
        from repro.core.api import enumerate_with_stats
        from repro.generators import CommunitySpec, gnp_signed, planted_partition_graph
        from repro.serve import SignedCliqueEngine

        background = gnp_signed(20, 0.1, negative_fraction=0.3, seed=seed)
        graph, _ = planted_partition_graph(
            background, [CommunitySpec(5, density=1.0)], seed=seed
        )
        cache_dir = tmp_path_factory.mktemp("engine-fuzz")
        # One memory slot: each new grid point evicts the previous one,
        # so the second sweep is served purely by disk re-hits.
        engine = SignedCliqueEngine(graph, cache_dir=cache_dir, cache_mem_entries=1)
        for alpha, k in self.GRID:
            engine.enumerate_with_stats(alpha, k)
        evicted_before = engine.counters["evictions"]
        for alpha, k in self.GRID[:-1]:
            rehit = engine.enumerate_with_stats(alpha, k)
            reference = enumerate_with_stats(graph, alpha, k)
            assert rehit.cliques == reference.cliques, (seed, alpha, k)
            assert rehit.stats == reference.stats, (seed, alpha, k)
        assert engine.counters["evictions"] > 0
        assert evicted_before > 0
        assert engine.counters["disk_hits"] >= len(self.GRID) - 1
