"""Unit tests for query-driven signed community search."""

import random

import pytest

from repro.core import (
    MSCE,
    AlphaK,
    best_signed_clique_for,
    query_candidate_space,
    query_search,
    signed_cliques_containing,
)
from repro.exceptions import ParameterError
from tests.conftest import make_random_signed_graph


class TestPaperExampleQueries:
    def test_member_query(self, paper_graph):
        cliques = signed_cliques_containing(paper_graph, {1}, alpha=3, k=1)
        assert [sorted(c.nodes) for c in cliques] == [[1, 2, 3, 4, 5]]

    def test_pair_query(self, paper_graph):
        cliques = signed_cliques_containing(paper_graph, {2, 3}, alpha=3, k=1)
        assert [sorted(c.nodes) for c in cliques] == [[1, 2, 3, 4, 5]]

    def test_outside_mccore_query_is_empty(self, paper_graph):
        assert signed_cliques_containing(paper_graph, {8}, alpha=3, k=1) == []

    def test_non_adjacent_query_is_empty(self, paper_graph):
        # v1 and v8 share no edge: no clique can contain both.
        assert signed_cliques_containing(paper_graph, {1, 8}, alpha=3, k=0) == []

    def test_budget_violating_query_is_empty(self, paper_graph):
        # v2 and v3 are negative neighbours: any clique containing both
        # violates the k=0 budget.
        assert signed_cliques_containing(paper_graph, {2, 3}, alpha=3, k=0) == []

    def test_best_clique(self, paper_graph):
        best = best_signed_clique_for(paper_graph, {4}, alpha=3, k=1)
        assert best is not None and sorted(best.nodes) == [1, 2, 3, 4, 5]
        assert best_signed_clique_for(paper_graph, {8}, alpha=3, k=1) is None


class TestValidation:
    def test_empty_query_rejected(self, paper_graph):
        with pytest.raises(ParameterError):
            signed_cliques_containing(paper_graph, set(), alpha=2, k=1)

    def test_unknown_node_rejected(self, paper_graph):
        with pytest.raises(ParameterError):
            signed_cliques_containing(paper_graph, {42}, alpha=2, k=1)


class TestCandidateSpace:
    def test_space_covers_answers(self, paper_graph):
        params = AlphaK(3, 1)
        space = query_candidate_space(paper_graph, {1}, params)
        assert space is not None and {1, 2, 3, 4, 5} <= space

    def test_space_none_for_infeasible(self, paper_graph):
        params = AlphaK(3, 0)
        assert query_candidate_space(paper_graph, {2, 3}, params) is None
        assert query_candidate_space(paper_graph, {8}, AlphaK(3, 1)) is None


class TestCrossValidation:
    def test_matches_filtered_full_enumeration(self):
        rng = random.Random(91)
        for _ in range(60):
            graph = make_random_signed_graph(rng)
            alpha = rng.choice([0, 1, 1.5, 2])
            k = rng.choice([0, 1, 2])
            params = AlphaK(alpha, k)
            full = MSCE(graph, params).enumerate_all().cliques
            nodes = sorted(graph.nodes())
            queries = [
                {rng.choice(nodes)},
                {rng.choice(nodes), rng.choice(nodes)},
            ]
            for query in queries:
                expected = {c.nodes for c in full if query <= c.nodes}
                got = {
                    c.nodes
                    for c in signed_cliques_containing(graph, query, alpha, k)
                }
                assert got == expected, (sorted(query), alpha, k)

    def test_query_search_explores_less_than_full(self):
        rng = random.Random(92)
        graph = make_random_signed_graph(
            rng, n_range=(11, 13), edge_probability_range=(0.6, 0.9)
        )
        params = AlphaK(1.5, 1)
        full = MSCE(graph, params).enumerate_all()
        if not full.cliques:
            pytest.skip("no cliques in this draw")
        seed = next(iter(full.cliques[0].nodes))
        scoped = query_search(graph, {seed}, 1.5, 1)
        assert scoped.stats.recursions <= full.stats.recursions

    def test_results_contain_query_and_are_verified(self):
        rng = random.Random(93)
        graph = make_random_signed_graph(rng, n_range=(8, 12))
        for clique in signed_cliques_containing(graph, {0}, 1, 1):
            assert 0 in clique.nodes
            clique.verify(graph)
