"""Property-based tests (hypothesis) for core computations."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import core_numbers, icore, k_core
from repro.graphs import SignedGraph

graph_specs = st.integers(min_value=0, max_value=8).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.sampled_from([0, 1, -1]),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        ),
    )
)


def _build(spec) -> SignedGraph:
    n, signs = spec
    graph = SignedGraph(nodes=range(n))
    for (u, v), sign in zip(itertools.combinations(range(n), 2), signs):
        if sign:
            graph.add_edge(u, v, sign)
    return graph


@settings(max_examples=60, deadline=None)
@given(graph_specs, st.integers(min_value=0, max_value=6))
def test_kcore_members_meet_degree_bound(spec, k):
    graph = _build(spec)
    members = k_core(graph, k)
    for node in members:
        assert len(graph.neighbors(node) & members) >= k


@settings(max_examples=60, deadline=None)
@given(graph_specs, st.integers(min_value=0, max_value=6))
def test_kcore_nested_in_lower_cores(spec, k):
    graph = _build(spec)
    higher = k_core(graph, k + 1)
    lower = k_core(graph, k)
    assert higher <= lower


@settings(max_examples=60, deadline=None)
@given(graph_specs)
def test_core_numbers_consistent_with_kcore(spec):
    graph = _build(spec)
    numbers = core_numbers(graph)
    for k in range(0, 7):
        expected = {node for node, c in numbers.items() if c >= k}
        assert k_core(graph, k) == expected


@settings(max_examples=60, deadline=None)
@given(graph_specs, st.integers(min_value=0, max_value=4))
def test_icore_fixed_nodes_respected(spec, tau):
    graph = _build(spec)
    plain = k_core(graph, tau)
    for node in graph.nodes():
        flag, members = icore(graph, fixed={node}, tau=tau)
        if node in plain:
            # Fixing a survivor changes nothing.
            assert flag and members == plain
        else:
            # Fixing a peeled node must fail.
            assert not flag and members == set()


@settings(max_examples=60, deadline=None)
@given(graph_specs, st.integers(min_value=0, max_value=4))
def test_positive_core_equals_core_of_positive_subgraph(spec, tau):
    graph = _build(spec)
    direct = k_core(graph, tau, sign="positive")
    via_subgraph = k_core(graph.positive_subgraph(), tau)
    assert direct == via_subgraph
