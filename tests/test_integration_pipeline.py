"""Integration tests: the full pipeline a downstream user would run.

generate -> persist -> reload -> reduce -> enumerate -> rank -> score ->
archive. Exercises the public API across package boundaries.
"""

import json

from repro import (
    AlphaK,
    MSCE,
    SignedGraph,
    enumerate_signed_cliques,
    find_mccore,
    read_signed_edgelist,
    top_r_signed_cliques,
    write_signed_edgelist,
)
from repro.generators import flysign_like, gnp_signed, planted_partition_graph
from repro.generators.planted import CommunitySpec
from repro.io import save_cliques, save_graph, load_graph
from repro.metrics import average_precision, community_stats, signed_conductance


class TestEndToEnd:
    def test_generate_persist_enumerate(self, tmp_path):
        background = gnp_signed(60, 0.05, 0.4, seed=31)
        graph, communities = planted_partition_graph(
            background,
            [CommunitySpec(size=7, negative_fraction=0.1), CommunitySpec(size=6)],
            seed=32,
        )
        path = tmp_path / "net.txt"
        write_signed_edgelist(graph, path)
        reloaded = read_signed_edgelist(path)
        # Isolated nodes are lost in edge-list form; everything else kept.
        assert reloaded.number_of_edges() == graph.number_of_edges()

        cliques = enumerate_signed_cliques(reloaded, alpha=2, k=2)
        assert cliques, "planted cliques must be discoverable after a round-trip"
        biggest = cliques[0]
        planted_sets = [frozenset(c) for c in communities]
        assert any(biggest.nodes <= p or len(biggest.nodes & p) >= 5 for p in planted_sets)

        out = tmp_path / "cliques.json"
        save_cliques(cliques, out)
        payload = json.loads(out.read_text())
        assert payload["alpha"] == 2 and len(payload["cliques"]) == len(cliques)

    def test_reduction_feeds_enumeration(self):
        graph, _ = planted_partition_graph(
            gnp_signed(80, 0.04, 0.3, seed=33),
            [CommunitySpec(size=8)],
            seed=34,
        )
        survivors = find_mccore(graph, alpha=2, k=2)
        cliques = enumerate_signed_cliques(graph, alpha=2, k=2)
        for clique in cliques:
            assert set(clique.nodes) <= survivors

    def test_topr_and_scoring(self):
        graph, truth = flysign_like(
            proteins=150, complexes=6, complex_size_range=(5, 12),
            background_edges=80, satellite_count=4, pathway_count=1,
            pathway_size=8, seed=35,
        )
        top = top_r_signed_cliques(graph, alpha=2, k=1, r=5)
        assert len(top) <= 5
        predictions = [set(c.nodes) for c in top]
        precision = average_precision(predictions, truth)
        assert 0.0 <= precision <= 1.0
        for members in predictions:
            stats = community_stats(graph, members)
            assert stats.density == 1.0  # cliques by construction
            assert -1.0 <= signed_conductance(graph, members) <= 1.0

    def test_json_graph_round_trip_preserves_results(self, tmp_path):
        graph = SignedGraph(
            [(1, 2, "+"), (1, 3, "+"), (2, 3, "+"), (3, 4, "-"), (1, 4, "+"), (2, 4, "+")]
        )
        save_graph(graph, tmp_path / "g.json")
        reloaded = load_graph(tmp_path / "g.json")
        before = {c.nodes for c in MSCE(graph, AlphaK(2, 1)).enumerate_all().cliques}
        after = {c.nodes for c in MSCE(reloaded, AlphaK(2, 1)).enumerate_all().cliques}
        assert before == after


class TestLemmasOnRealWorkloads:
    def test_lemma3_holds_on_dataset(self):
        # Every enumerated maximal clique lies inside the MCCore, on an
        # actual dataset workload (not just random micro-graphs).
        from repro.core import find_mccore
        from repro.experiments.registry import get_dataset

        graph = get_dataset("slashdot").graph
        survivors = find_mccore(graph, 4, 3)
        cliques = enumerate_signed_cliques(graph, 4, 3, max_results=50)
        assert cliques
        for clique in cliques:
            assert set(clique.nodes) <= survivors

    def test_reduction_nesting_on_dataset(self):
        from repro.core import AlphaK as _AlphaK
        from repro.core.reduction import reduce_graph
        from repro.experiments.registry import get_dataset

        graph = get_dataset("wiki").graph
        params = _AlphaK(4, 3)
        none = reduce_graph(graph, params, "none")
        positive = reduce_graph(graph, params, "positive-core")
        mccore = reduce_graph(graph, params, "mcnew")
        assert mccore <= positive <= none
