"""Tests for the experiment harness and figure drivers (small configurations)."""

import pytest

from repro.experiments import (
    ALL_DRIVERS,
    Exhibit,
    Series,
    ablation_maxtest,
    fig4_mccore_size,
    fig6_growth_mechanism,
    fig9_memory,
    fig10_case_study,
    measure,
    measure_peak_memory,
    stopwatch,
    table1_dataset_stats,
)
from repro.experiments.harness import (
    FAST_ALPHAS,
    FULL_ALPHAS,
    full_sweeps_enabled,
    sweep_alphas,
    time_limit_seconds,
)


class TestHarness:
    def test_stopwatch(self):
        with stopwatch() as elapsed:
            total = sum(range(1000))
        assert total == 499500
        assert elapsed() >= 0.0

    def test_measure(self):
        result, seconds = measure(sorted, [3, 1, 2])
        assert result == [1, 2, 3] and seconds >= 0.0

    def test_measure_peak_memory(self):
        result, peak = measure_peak_memory(lambda: list(range(50_000)))
        assert len(result) == 50_000
        assert peak > 100_000  # a 50k list costs well over 100 kB

    def test_sweep_mode_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        assert not full_sweeps_enabled()
        assert sweep_alphas() == FAST_ALPHAS
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert full_sweeps_enabled()
        assert sweep_alphas() == FULL_ALPHAS

    def test_time_limit_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_TIME_LIMIT", raising=False)
        assert time_limit_seconds() == 15.0
        monkeypatch.setenv("REPRO_BENCH_TIME_LIMIT", "3.5")
        assert time_limit_seconds() == 3.5

    def test_series_and_exhibit_rendering(self):
        series = Series("demo")
        series.add("a", 1.0)
        series.add("b", 2)
        exhibit = Exhibit(title="Demo", series=[series], notes=["hello"])
        text = exhibit.render()
        assert "Demo" in text and "demo" in text and "hello" in text
        assert series.as_rows() == [("a", 1.0), ("b", 2)]
        assert exhibit.series_by_label()["demo"] is series


class TestDrivers:
    def test_registry_complete(self):
        # One driver per paper exhibit plus three ablations.
        expected = {
            "table1", "fig3", "fig4", "fig5", "fig6", "fig6_mechanism",
            "fig7", "fig8", "fig8_parallel", "fig9", "table2", "fig10",
            "fig11", "ablation_pruning", "ablation_maxtest",
            "ablation_reduction",
        }
        assert set(ALL_DRIVERS) == expected

    def test_table1(self):
        exhibit = table1_dataset_stats(names=("slashdot",))
        by_label = exhibit.series_by_label()
        assert by_label["n"].y[0] > 1000
        assert by_label["E+"].y[0] + by_label["E-"].y[0] == by_label["m"].y[0]

    def test_fig4_small_sweep(self):
        exhibits = fig4_mccore_size(names=("slashdot",), alphas=(2, 4), ks=(1, 3))
        assert len(exhibits) == 2
        alpha_series = exhibits[0].series_by_label()["MCNew"]
        # MCCore shrinks as alpha grows.
        assert alpha_series.y[0] >= alpha_series.y[-1]

    def test_fig6_mechanism_shows_growth(self):
        exhibit = fig6_growth_mechanism(block_size=16, negative_probability=0.3, ks=(1, 2, 3))
        counts = exhibit.series[0].y
        assert counts[1] > counts[0]  # the rising regime

    def test_fig9_memory_single_dataset(self):
        exhibit = fig9_memory(names=("slashdot",), limit=10)
        by_label = exhibit.series_by_label()
        assert by_label["MSCE-G peak bytes"].y[0] > 0
        assert by_label["graph bytes (est.)"].y[0] > 0

    def test_fig10_case_study(self):
        exhibit = fig10_case_study(limit=20)
        sizes = exhibit.series_by_label().get("community size")
        assert sizes is not None
        tclique_size, signed_size = sizes.y
        assert signed_size >= tclique_size

    def test_ablation_maxtest(self):
        exhibit = ablation_maxtest(limit=10)
        counts = exhibit.series_by_label()["cliques"].y
        assert counts[1] <= counts[0]  # paper test can only under-report
