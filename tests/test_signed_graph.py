"""Unit tests for the SignedGraph data structure."""

import pytest

from repro.exceptions import EdgeSignError, GraphError, SelfLoopError
from repro.graphs import NEGATIVE, POSITIVE, SignedGraph, normalize_sign, validate_graph


class TestNormalizeSign:
    def test_integer_forms(self):
        assert normalize_sign(1) == POSITIVE
        assert normalize_sign(-1) == NEGATIVE

    def test_string_forms(self):
        assert normalize_sign("+") == POSITIVE
        assert normalize_sign("-") == NEGATIVE
        assert normalize_sign("positive") == POSITIVE
        assert normalize_sign("neg") == NEGATIVE

    def test_boolean_forms(self):
        assert normalize_sign(True) == POSITIVE
        assert normalize_sign(False) == NEGATIVE

    def test_invalid_sign_raises(self):
        with pytest.raises(EdgeSignError):
            normalize_sign(0)
        with pytest.raises(EdgeSignError):
            normalize_sign("maybe")
        with pytest.raises(EdgeSignError):
            normalize_sign(None)


class TestConstruction:
    def test_empty_graph(self):
        graph = SignedGraph()
        assert len(graph) == 0
        assert graph.number_of_edges() == 0

    def test_init_with_edges_and_nodes(self):
        graph = SignedGraph([(1, 2, "+")], nodes=[3])
        assert graph.has_edge(1, 2)
        assert graph.has_node(3)
        assert graph.degree(3) == 0

    def test_add_edge_creates_endpoints(self):
        graph = SignedGraph()
        graph.add_edge("a", "b", "-")
        assert graph.has_node("a") and graph.has_node("b")
        assert graph.sign("a", "b") == NEGATIVE

    def test_self_loop_rejected(self):
        graph = SignedGraph()
        with pytest.raises(SelfLoopError):
            graph.add_edge(1, 1, "+")
        with pytest.raises(SelfLoopError):
            graph.set_sign(2, 2, "-")

    def test_duplicate_same_sign_is_noop(self):
        graph = SignedGraph([(1, 2, "+")])
        graph.add_edge(2, 1, "+")
        assert graph.number_of_edges() == 1

    def test_duplicate_conflicting_sign_raises(self):
        graph = SignedGraph([(1, 2, "+")])
        with pytest.raises(GraphError):
            graph.add_edge(1, 2, "-")

    def test_set_sign_overwrites(self):
        graph = SignedGraph([(1, 2, "+")])
        graph.set_sign(1, 2, "-")
        assert graph.sign(1, 2) == NEGATIVE
        assert graph.number_of_positive_edges() == 0
        assert graph.number_of_negative_edges() == 1
        validate_graph(graph)


class TestQueries:
    def test_sign_missing_edge_raises(self):
        graph = SignedGraph([(1, 2, "+")])
        with pytest.raises(GraphError):
            graph.sign(1, 3)

    def test_degree_partition(self, paper_graph):
        # v2: positive neighbors {1, 4, 5, 7}, negative {3}.
        assert paper_graph.positive_degree(2) == 4
        assert paper_graph.negative_degree(2) == 1
        assert paper_graph.degree(2) == 5
        assert paper_graph.positive_neighbors(2) == {1, 4, 5, 7}
        assert paper_graph.negative_neighbors(2) == {3}

    def test_neighbors_returns_copy(self):
        graph = SignedGraph([(1, 2, "+")])
        neighbors = graph.neighbors(1)
        neighbors.add(99)
        assert not graph.has_node(99)
        assert graph.neighbors(1) == {2}

    def test_neighbor_keys_is_live_view(self):
        graph = SignedGraph([(1, 2, "+")])
        view = graph.neighbor_keys(1)
        graph.add_edge(1, 3, "-")
        assert set(view) == {2, 3}

    def test_neighbor_queries_unknown_node(self):
        graph = SignedGraph()
        for accessor in (
            graph.neighbors,
            graph.neighbor_keys,
            graph.positive_neighbors,
            graph.negative_neighbors,
            graph.degree,
        ):
            with pytest.raises(GraphError):
                accessor(42)

    def test_edges_reported_once(self, paper_graph):
        edges = list(paper_graph.edges())
        assert len(edges) == paper_graph.number_of_edges() == 17
        seen = {frozenset((u, v)) for u, v, _ in edges}
        assert len(seen) == 17

    def test_positive_and_negative_edge_iterators(self, paper_graph):
        positives = set(frozenset(e) for e in paper_graph.positive_edges())
        negatives = set(frozenset(e) for e in paper_graph.negative_edges())
        assert frozenset((2, 3)) in negatives
        assert frozenset((7, 8)) in negatives
        assert len(negatives) == 2
        assert len(positives) == 15

    def test_max_negative_degree(self, paper_graph):
        assert paper_graph.max_negative_degree() == 1
        assert SignedGraph().max_negative_degree() == 0

    def test_degrees_within(self, paper_graph):
        members = {1, 2, 3, 4, 5}
        pos, neg = paper_graph.degrees_within(members, 2)
        assert (pos, neg) == (3, 1)
        with pytest.raises(GraphError):
            paper_graph.degrees_within(members, 42)

    def test_contains_iter_len(self, paper_graph):
        assert 1 in paper_graph
        assert 42 not in paper_graph
        assert sorted(paper_graph) == list(range(1, 9))
        assert len(paper_graph) == 8


class TestMutation:
    def test_remove_edge(self, paper_graph):
        paper_graph.remove_edge(2, 3)
        assert not paper_graph.has_edge(2, 3)
        assert paper_graph.negative_degree(2) == 0
        validate_graph(paper_graph)

    def test_remove_missing_edge_raises(self):
        graph = SignedGraph([(1, 2, "+")])
        with pytest.raises(GraphError):
            graph.remove_edge(1, 3)

    def test_remove_node_cleans_incident_edges(self, paper_graph):
        paper_graph.remove_node(5)
        assert not paper_graph.has_node(5)
        assert 5 not in paper_graph.neighbors(1)
        validate_graph(paper_graph)

    def test_remove_missing_node_raises(self):
        with pytest.raises(GraphError):
            SignedGraph().remove_node(1)

    def test_remove_nodes_bulk(self, paper_graph):
        paper_graph.remove_nodes([6, 7, 8])
        assert paper_graph.node_set() == {1, 2, 3, 4, 5}
        validate_graph(paper_graph)


class TestDerivedGraphs:
    def test_copy_is_independent(self, paper_graph):
        clone = paper_graph.copy()
        assert clone == paper_graph
        clone.remove_node(8)
        assert paper_graph.has_node(8)
        validate_graph(clone)

    def test_subgraph_keeps_internal_edges_only(self, paper_graph):
        sub = paper_graph.subgraph({1, 2, 3, 99})
        assert sub.node_set() == {1, 2, 3}
        assert sub.sign(2, 3) == NEGATIVE
        assert sub.number_of_edges() == 3
        validate_graph(sub)

    def test_positive_subgraph(self, paper_graph):
        positive = paper_graph.positive_subgraph()
        assert positive.number_of_nodes() == 8
        assert positive.number_of_negative_edges() == 0
        assert positive.number_of_positive_edges() == 15
        assert not positive.has_edge(2, 3)
        validate_graph(positive)

    def test_ego_network_definition(self, paper_graph):
        # Example 5: the ego network of v2 is induced by {v1, v4, v5, v7}.
        ego = paper_graph.induced_positive_neighborhood(2)
        assert ego.node_set() == {1, 4, 5, 7}
        assert not ego.has_node(2)

    def test_ego_network_may_contain_negative_edges(self):
        graph = SignedGraph([(0, 1, "+"), (0, 2, "+"), (1, 2, "-")])
        ego = graph.induced_positive_neighborhood(0)
        assert ego.sign(1, 2) == NEGATIVE


class TestDunder:
    def test_equality(self):
        a = SignedGraph([(1, 2, "+")])
        b = SignedGraph([(2, 1, "+")])
        assert a == b
        b.set_sign(1, 2, "-")
        assert a != b
        assert a != "not a graph"

    def test_repr_mentions_counts(self, paper_graph):
        text = repr(paper_graph)
        assert "n=8" in text and "m=17" in text

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(SignedGraph())
