"""Tests for the antagonistic clique-pair model."""

import itertools
import random

from repro.baselines.antagonistic import (
    enumerate_antagonistic_pairs,
    is_antagonistic_pair,
    maximal_antagonistic_pairs,
)
from repro.graphs import SignedGraph


def _war_graph() -> SignedGraph:
    """Two positive triangles, completely hostile across."""
    edges = [
        (1, 2, "+"), (2, 3, "+"), (1, 3, "+"),
        (4, 5, "+"), (5, 6, "+"), (4, 6, "+"),
    ]
    edges += [(a, b, "-") for a in (1, 2, 3) for b in (4, 5, 6)]
    return SignedGraph(edges)


class TestPattern:
    def test_valid_pair(self):
        graph = _war_graph()
        assert is_antagonistic_pair(graph, {1, 2, 3}, {4, 5, 6})

    def test_rejects_overlap_and_empty(self):
        graph = _war_graph()
        assert not is_antagonistic_pair(graph, {1, 2}, {2, 4})
        assert not is_antagonistic_pair(graph, set(), {4})

    def test_rejects_internal_negative(self):
        graph = _war_graph()
        graph.set_sign(1, 2, "-")
        assert not is_antagonistic_pair(graph, {1, 2, 3}, {4, 5, 6})

    def test_rejects_positive_cross(self):
        graph = _war_graph()
        graph.set_sign(1, 4, "+")
        assert not is_antagonistic_pair(graph, {1, 2, 3}, {4, 5, 6})


class TestEnumeration:
    def test_two_camp_graph(self):
        pairs = maximal_antagonistic_pairs(_war_graph())
        assert len(pairs) == 1
        sides = {frozenset(pairs[0][0]), frozenset(pairs[0][1])}
        assert sides == {frozenset({1, 2, 3}), frozenset({4, 5, 6})}

    def test_no_negative_edges_no_pairs(self):
        graph = SignedGraph([(1, 2, "+"), (2, 3, "+"), (1, 3, "+")])
        assert maximal_antagonistic_pairs(graph) == []

    def test_min_side_filters_stars(self):
        graph = SignedGraph([(1, 2, "-")])
        assert enumerate_antagonistic_pairs(graph, min_side=1) == [
            (frozenset({1}), frozenset({2}))
        ]
        assert enumerate_antagonistic_pairs(graph, min_side=2) == []

    def test_results_are_valid_and_maximal(self):
        rng = random.Random(141)
        for _ in range(25):
            n = rng.randint(5, 9)
            graph = SignedGraph(nodes=range(n))
            for u, v in itertools.combinations(range(n), 2):
                if rng.random() < 0.6:
                    graph.add_edge(u, v, -1 if rng.random() < 0.5 else 1)
            for side_a, side_b in enumerate_antagonistic_pairs(graph, min_side=1):
                assert is_antagonistic_pair(graph, set(side_a), set(side_b))
                # No single-node extension on either side.
                for node in graph.node_set() - side_a - side_b:
                    assert not is_antagonistic_pair(graph, set(side_a) | {node}, set(side_b))
                    assert not is_antagonistic_pair(graph, set(side_a), set(side_b) | {node})

    def test_matches_brute_force(self):
        rng = random.Random(142)
        for _ in range(15):
            n = rng.randint(4, 7)
            graph = SignedGraph(nodes=range(n))
            for u, v in itertools.combinations(range(n), 2):
                if rng.random() < 0.7:
                    graph.add_edge(u, v, -1 if rng.random() < 0.5 else 1)
            truth = _brute_force_pairs(graph)
            got = {
                frozenset((a, b))
                for a, b in enumerate_antagonistic_pairs(graph, min_side=1)
            }
            assert got == truth

    def test_sorted_output(self):
        pairs = maximal_antagonistic_pairs(_war_graph(), min_side=1)
        sizes = [len(a) + len(b) for a, b in pairs]
        assert sizes == sorted(sizes, reverse=True)


def _brute_force_pairs(graph):
    nodes = sorted(graph.nodes())
    valid = set()
    for r in range(1, len(nodes) + 1):
        for a_nodes in itertools.combinations(nodes, r):
            rest = [node for node in nodes if node not in a_nodes]
            for s in range(1, len(rest) + 1):
                for b_nodes in itertools.combinations(rest, s):
                    if is_antagonistic_pair(graph, set(a_nodes), set(b_nodes)):
                        valid.add(frozenset((frozenset(a_nodes), frozenset(b_nodes))))
    maximal = set()
    for pair in valid:
        a, b = tuple(pair)
        dominated = any(
            other != pair
            and (
                (a <= tuple(other)[0] and b <= tuple(other)[1])
                or (a <= tuple(other)[1] and b <= tuple(other)[0])
            )
            for other in valid
        )
        if not dominated:
            maximal.add(pair)
    return maximal
