"""Keep docs/API.md in sync with the public surface.

Fails when an API change was not followed by
``python tools/gen_api_docs.py`` — the release discipline that keeps
the generated reference trustworthy.
"""

import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", ROOT / "tools" / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestApiDocs:
    def test_generated_doc_is_current(self):
        generator = _load_generator()
        expected = generator.generate()
        committed = (ROOT / "docs" / "API.md").read_text(encoding="utf-8")
        assert committed == expected, (
            "docs/API.md is stale; run `python tools/gen_api_docs.py`"
        )

    def test_doc_covers_core_names(self):
        text = (ROOT / "docs" / "API.md").read_text(encoding="utf-8")
        for name in ("MSCE", "mccore_new", "signed_conductance", "enumerate_signed_cliques"):
            assert name in text
