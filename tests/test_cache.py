"""Tests for the disk-backed enumeration result cache."""

import pytest

import repro
from repro.core import MSCE, AlphaK
from repro.io.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    cached_enumerate,
    graph_fingerprint,
)
from repro.graphs import SignedGraph


class TestFingerprint:
    def test_order_independent(self, paper_graph):
        reordered = SignedGraph(sorted(paper_graph.edges(), key=repr, reverse=True))
        assert graph_fingerprint(paper_graph) == graph_fingerprint(reordered)

    def test_sensitive_to_edges_and_signs(self, paper_graph):
        base = graph_fingerprint(paper_graph)
        flipped = paper_graph.copy()
        flipped.set_sign(1, 2, "-")
        assert graph_fingerprint(flipped) != base
        removed = paper_graph.copy()
        removed.remove_edge(1, 2)
        assert graph_fingerprint(removed) != base

    def test_sensitive_to_isolated_nodes(self, paper_graph):
        base = graph_fingerprint(paper_graph)
        extended = paper_graph.copy()
        extended.add_node("ghost")
        assert graph_fingerprint(extended) != base

    def test_fingerprint_memoized_one_hash_per_version(self, paper_graph, monkeypatch):
        import hashlib as real_hashlib

        calls = []
        original = real_hashlib.sha256

        def counting_sha256(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr("repro.io.cache.hashlib.sha256", counting_sha256)
        graph = paper_graph.copy()
        first = graph_fingerprint(graph)
        assert len(calls) == 1
        # repeated fingerprints of the same graph version hash zero times
        for _ in range(5):
            assert graph_fingerprint(graph) == first
        assert len(calls) == 1
        # every mutation bumps the version and invalidates the memo...
        graph.set_sign(1, 2, "-")
        version = graph.version
        changed = graph_fingerprint(graph)
        assert changed != first and len(calls) == 2 and graph.version == version
        # ...exactly once per version, not per call
        assert graph_fingerprint(graph) == changed
        assert len(calls) == 2

    def test_version_counter_tracks_mutations(self, paper_graph):
        graph = paper_graph.copy()
        start = graph.version
        graph.add_node("new-node")
        graph.add_node("new-node")  # already present: no version bump
        assert graph.version == start + 1
        graph.set_sign("new-node", 1, "+")
        graph.remove_edge("new-node", 1)
        graph.remove_node("new-node")
        assert graph.version == start + 4

    def test_copy_carries_memoized_fingerprint(self, paper_graph):
        fingerprint = graph_fingerprint(paper_graph)
        clone = paper_graph.copy()
        assert clone._fingerprint == fingerprint
        assert graph_fingerprint(clone) == fingerprint


class TestResultCache:
    def test_put_get_round_trip(self, paper_graph, tmp_path):
        params = AlphaK(3, 1)
        cliques = MSCE(paper_graph, params).enumerate_all().cliques
        cache = ResultCache(tmp_path)
        assert cache.get(paper_graph, params) is None
        cache.put(paper_graph, params, cliques)
        loaded = cache.get(paper_graph, params)
        assert loaded is not None
        assert {c.nodes for c in loaded} == {c.nodes for c in cliques}
        assert loaded[0].positive_edges == cliques[0].positive_edges

    def test_kind_separates_entries(self, paper_graph, tmp_path):
        params = AlphaK(3, 1)
        cache = ResultCache(tmp_path)
        cache.put(paper_graph, params, [], kind="top5")
        assert cache.get(paper_graph, params, kind="top5") == []
        assert cache.get(paper_graph, params, kind="all") is None

    def test_corrupt_entry_is_a_miss(self, paper_graph, tmp_path):
        params = AlphaK(3, 1)
        cache = ResultCache(tmp_path)
        cache.put(paper_graph, params, [])
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        assert cache.get(paper_graph, params) is None

    def test_non_serialisable_labels_rejected(self, tmp_path):
        graph = SignedGraph([((1, 2), (3, 4), "+")])  # tuple labels
        params = AlphaK(1, 0)
        cliques = MSCE(graph, params).enumerate_all().cliques
        with pytest.raises(TypeError):
            ResultCache(tmp_path).put(graph, params, cliques)

    def test_key_carries_schema_and_package_version(self, paper_graph, tmp_path):
        params = AlphaK(3, 1)
        cache = ResultCache(tmp_path)
        cache.put(paper_graph, params, [])
        (entry,) = tmp_path.glob("*.json")
        assert f"-s{CACHE_SCHEMA_VERSION}-v{repro.__version__}-" in entry.name

    def test_schema_bump_invalidates_old_entries(self, paper_graph, tmp_path, monkeypatch):
        params = AlphaK(3, 1)
        cache = ResultCache(tmp_path)
        cache.put(paper_graph, params, [])
        assert cache.get(paper_graph, params) == []
        monkeypatch.setattr(
            "repro.io.cache.CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1
        )
        assert cache.get(paper_graph, params) is None  # old entry never found

    def test_clear(self, paper_graph, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(paper_graph, AlphaK(3, 1), [])
        assert cache.clear() == 1
        assert cache.get(paper_graph, AlphaK(3, 1)) is None


class TestCachedEnumerate:
    def test_second_call_hits_disk(self, paper_graph, tmp_path):
        first = cached_enumerate(paper_graph, 3, 1, cache_dir=tmp_path)
        assert [sorted(c.nodes) for c in first] == [[1, 2, 3, 4, 5]]
        assert list(tmp_path.glob("*.json"))
        again = cached_enumerate(paper_graph, 3, 1, cache_dir=tmp_path)
        assert {c.nodes for c in again} == {c.nodes for c in first}

    def test_partial_results_not_cached(self, paper_graph, tmp_path):
        cached_enumerate(paper_graph, 3, 1, cache_dir=tmp_path, time_limit=1e-9)
        assert not list(tmp_path.glob("*.json"))

    def test_graph_change_invalidates(self, paper_graph, tmp_path):
        cached_enumerate(paper_graph, 3, 1, cache_dir=tmp_path)
        changed = paper_graph.copy()
        changed.set_sign(2, 3, "+")
        fresh = cached_enumerate(changed, 3, 1, cache_dir=tmp_path)
        direct = MSCE(changed, AlphaK(3, 1)).enumerate_all().cliques
        assert {c.nodes for c in fresh} == {c.nodes for c in direct}
