"""Differential harness for the serving engine (``repro.serve``).

The engine's contract is *bit-identical transparency*: every answer it
serves — cold compute, memory hit, disk hit, post-eviction disk re-hit,
derived top-r, batched grid point, post-update recompute — must equal
the one-shot :mod:`repro.core.api` answer on a fresh copy of the current
graph, cliques AND stats. These tests pin that contract across cache
tiers, worker counts, request shapes, interleaved updates, and
concurrent clients.
"""

import json
import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.core import MSCE, AlphaK
from repro.core.api import (
    enumerate_signed_cliques,
    enumerate_with_stats,
    find_mccore,
    top_r_signed_cliques,
)
from repro.core.query import query_search
from repro.exceptions import GraphError, ParameterError
from repro.generators import CommunitySpec, gnp_signed, planted_partition_graph
from repro.graphs import SignedGraph
from repro.io import write_signed_edgelist
from repro.io.cache import entry_key, graph_fingerprint
from repro.obs import runtime as obs
from repro.obs.export import prometheus_text
from repro.serve import GridResult, MemoryLRU, SignedCliqueEngine, approximate_size
from tests.conftest import PAPER_EDGES

GRID = [(2.0, 1), (2.0, 2), (2.5, 2), (3.0, 1), (3.0, 2)]


@pytest.fixture
def paper_graph():
    return SignedGraph(PAPER_EDGES)


@pytest.fixture
def random_graph():
    return gnp_signed(36, 0.3, negative_fraction=0.25, seed=11)


def assert_result_equal(result, reference, context=""):
    assert result.cliques == reference.cliques, f"cliques diverge {context}"
    assert result.stats == reference.stats, (
        f"stats diverge {context}: "
        f"{result.stats.as_dict()} != {reference.stats.as_dict()}"
    )


class TestMemoryLRU:
    def test_put_get_and_lru_eviction_order(self):
        lru = MemoryLRU(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh "a"; "b" is now LRU
        lru.put("c", 3)
        assert lru.get("b") is None
        assert lru.get("a") == 1 and lru.get("c") == 3
        assert lru.evictions == 1

    def test_byte_bound_evicts(self):
        payload = ["x" * 100] * 20
        size = approximate_size(payload)
        lru = MemoryLRU(max_entries=100, max_bytes=size + size // 2)
        lru.put("a", payload)
        lru.put("b", list(payload))
        assert "a" not in lru and "b" in lru
        assert lru.approximate_bytes <= lru.max_bytes

    def test_oversized_entry_never_sticks(self):
        lru = MemoryLRU(max_entries=4, max_bytes=64)
        lru.put("big", ["y" * 1000] * 10)
        assert len(lru) == 0 and lru.evictions == 1

    def test_replace_updates_bytes(self):
        lru = MemoryLRU(max_entries=4)
        lru.put("k", "small")
        before = lru.approximate_bytes
        lru.put("k", "a much much longer payload string" * 4)
        assert len(lru) == 1 and lru.approximate_bytes > before

    def test_stats_and_validation(self):
        lru = MemoryLRU(max_entries=1)
        lru.get("missing")
        lru.put("k", 1)
        lru.get("k")
        stats = lru.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["puts"] == 1
        with pytest.raises(ValueError):
            MemoryLRU(max_entries=0)
        with pytest.raises(ValueError):
            MemoryLRU(max_bytes=0)

    def test_concurrent_puts_and_gets_stay_consistent(self):
        lru = MemoryLRU(max_entries=16)
        errors = []

        def worker(base):
            try:
                for i in range(200):
                    key = f"k{(base + i) % 24}"
                    lru.put(key, (base, i))
                    value = lru.get(key)
                    assert value is None or isinstance(value, tuple)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(j,)) for j in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(lru) <= 16


class TestDifferentialOracle:
    """Engine answers == one-shot API answers, across every cache tier."""

    def test_enumerate_cold_warm_disk_and_evicted(self, random_graph, tmp_path):
        engine = SignedCliqueEngine(
            random_graph, cache_dir=tmp_path / "cache", cache_mem_entries=2
        )
        for alpha, k in GRID:
            reference = enumerate_with_stats(random_graph, alpha, k)
            cold = engine.enumerate_with_stats(alpha, k)
            assert_result_equal(cold, reference, f"cold ({alpha},{k})")
        # The 2-entry LRU has evicted early grid points: these now re-hit
        # the disk tier; late points hit memory. Both must replay exactly.
        assert engine.counters["evictions"] > 0
        for alpha, k in GRID:
            reference = enumerate_with_stats(random_graph, alpha, k)
            warm = engine.enumerate_with_stats(alpha, k)
            assert_result_equal(warm, reference, f"warm ({alpha},{k})")
        assert engine.counters["disk_hits"] > 0
        # the most recent point is still memory-resident
        engine.enumerate_with_stats(*GRID[-1])
        assert engine.counters["memory_hits"] > 0

    def test_memory_only_engine_recomputes_after_eviction(self, paper_graph):
        engine = SignedCliqueEngine(paper_graph, cache_mem_entries=1)
        first = engine.enumerate_with_stats(2, 1)
        engine.enumerate_with_stats(3, 1)  # evicts (2, 1)
        again = engine.enumerate_with_stats(2, 1)
        assert_result_equal(again, first, "post-eviction recompute")
        assert engine.counters["computes"] >= 3

    def test_cliques_tier_and_derived_top_r(self, random_graph):
        engine = SignedCliqueEngine(random_graph)
        assert engine.enumerate(2, 2) == enumerate_signed_cliques(random_graph, 2, 2)
        for r in (1, 3, 100):
            assert engine.top_r(2, 2, r) == top_r_signed_cliques(random_graph, 2, 2, r)
        assert engine.counters["derived_hits"] >= 3

    def test_top_r_with_stats_matches_cutoff_search(self, random_graph):
        engine = SignedCliqueEngine(random_graph)
        result = engine.top_r_with_stats(2, 2, 3)
        reference = MSCE(random_graph, AlphaK(2, 2)).top_r(3)
        assert_result_equal(result, reference, "top-r cutoff")
        replay = engine.top_r_with_stats(2, 2, 3)
        assert_result_equal(replay, reference, "top-r cache replay")

    def test_query_matches_one_shot_search(self, random_graph):
        engine = SignedCliqueEngine(random_graph)
        survivors = find_mccore(random_graph, 2, 2)
        seeds = sorted(survivors, key=repr)[:3] or sorted(
            random_graph.nodes(), key=repr
        )[:1]
        for seed in seeds:
            result = engine.query_with_stats([seed], 2, 2)
            reference = query_search(random_graph, [seed], 2, 2)
            assert_result_equal(result, reference, f"query {seed!r}")
            # cached replay
            assert_result_equal(
                engine.query_with_stats([seed], 2, 2), reference, "query replay"
            )
        assert engine.best_clique_for(seeds, 2, 2) == (
            query_search(random_graph, seeds, 2, 2).cliques or [None]
        )[0]

    def test_query_validation_propagates(self, paper_graph):
        engine = SignedCliqueEngine(paper_graph)
        with pytest.raises(ParameterError):
            engine.query_with_stats([], 2, 1)
        with pytest.raises(ParameterError):
            engine.query_with_stats(["no-such-node"], 2, 1)

    def test_mccore_matches_api(self, random_graph):
        engine = SignedCliqueEngine(random_graph)
        for method in ("mcnew", "mcbasic", "positive-core"):
            assert engine.mccore(2, 2, method) == find_mccore(
                random_graph, 2, 2, method=method
            )

    def test_reduction_memo_shares_equal_ceilings(self, paper_graph):
        engine = SignedCliqueEngine(paper_graph)
        # ceil(2*2) == ceil(4*1) == ceil(1.3*3) == 4: one coring pass.
        engine.enumerate_with_stats(2, 2)
        engine.enumerate_with_stats(4, 1)
        engine.enumerate_with_stats(1.3, 3)
        assert engine.counters["reduce_computed"] == 1
        assert engine.counters["reduce_shared"] == 2
        assert engine.sharing_ratio == pytest.approx(2 / 3)
        # ...and the shared-coring answers still match one-shot calls.
        for alpha, k in ((2, 2), (4, 1), (1.3, 3)):
            assert engine.enumerate(alpha, k) == enumerate_signed_cliques(
                paper_graph, alpha, k
            )

    def test_engine_does_not_mutate_caller_graph(self, paper_graph):
        fingerprint = graph_fingerprint(paper_graph)
        engine = SignedCliqueEngine(paper_graph)
        engine.enumerate(2, 1)
        engine.add_edge("x1", "x2", "+")
        assert not paper_graph.has_node("x1")
        assert graph_fingerprint(paper_graph) == fingerprint


class TestRunGrid:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_grid_matches_sequential_per_point(self, random_graph, workers):
        engine = SignedCliqueEngine(random_graph)
        alphas, ks = [2.0, 2.5, 3.0], [1, 2]
        grid = engine.run_grid(alphas, ks, workers=workers)
        assert len(grid) == len(alphas) * len(ks)
        for params, result in grid.items():
            reference = enumerate_with_stats(random_graph, params.alpha, params.k)
            assert_result_equal(result, reference, f"grid{workers} {params}")
        assert grid.report["workers"] == workers
        assert grid.report["computed"] == len(grid)

    def test_grid_result_lookup_api(self, paper_graph):
        engine = SignedCliqueEngine(paper_graph)
        grid = engine.run_grid([2, 3], [1])
        assert isinstance(grid, GridResult)
        assert grid[(2, 1)].cliques == grid[AlphaK(2, 1)].cliques
        assert (2, 1) in grid and (9, 9) not in grid
        assert list(grid) == [AlphaK(2, 1), AlphaK(3, 1)]

    def test_grid_reuses_cached_points(self, random_graph, tmp_path):
        engine = SignedCliqueEngine(random_graph, cache_dir=tmp_path / "c")
        engine.run_grid([2.0, 2.5], [2])
        grid = engine.run_grid([2.0, 2.5, 3.0], [2])
        assert grid.report["served_from_cache"] == 2
        assert grid.report["computed"] == 1
        for params, result in grid.items():
            reference = enumerate_with_stats(random_graph, params.alpha, params.k)
            assert_result_equal(result, reference, f"partial-warm {params}")

    def test_grid_served_across_engine_restart_via_disk(self, random_graph, tmp_path):
        cache = tmp_path / "persistent"
        SignedCliqueEngine(random_graph, cache_dir=cache).run_grid([2, 3], [2])
        engine = SignedCliqueEngine(random_graph, cache_dir=cache)
        grid = engine.run_grid([2, 3], [2])
        assert grid.report["served_from_cache"] == 2
        for params, result in grid.items():
            reference = enumerate_with_stats(random_graph, params.alpha, params.k)
            assert_result_equal(result, reference, f"restart {params}")

    def test_grid_deduplicates_equal_settings(self, paper_graph):
        engine = SignedCliqueEngine(paper_graph)
        grid = engine.run_grid([2, 2], [1, 1])
        assert len(grid) == 1


class TestUpdates:
    """Mutations invalidate narrowly; answers track the current graph."""

    def _random_edit(self, rng, engine):
        graph = engine.graph
        nodes = sorted(graph.nodes(), key=repr)
        u, v = rng.sample(nodes, 2)
        if graph.has_edge(u, v):
            if rng.random() < 0.5:
                engine.remove_edge(u, v)
            else:
                engine.flip_sign(u, v, rng.choice(["+", "-"]))
        else:
            engine.add_edge(u, v, rng.choice(["+", "-"]))

    def test_interleaved_updates_and_queries(self, random_graph, tmp_path):
        rng = random.Random(5)
        engine = SignedCliqueEngine(random_graph, cache_dir=tmp_path / "cache")
        for step in range(6):
            self._random_edit(rng, engine)
            snapshot = engine.snapshot()
            alpha, k = GRID[step % len(GRID)]
            # cliques tier may serve locality-repaired entries...
            assert engine.enumerate(alpha, k) == enumerate_signed_cliques(
                snapshot, alpha, k
            ), f"repaired tier diverges at step {step} ({alpha},{k})"
            # ...while the stats tier recomputes exactly.
            assert_result_equal(
                engine.enumerate_with_stats(alpha, k),
                enumerate_with_stats(snapshot, alpha, k),
                f"step {step} ({alpha},{k})",
            )
            assert engine.mccore(alpha, k) == find_mccore(snapshot, alpha, k)

    def test_remove_node_and_add_node(self, paper_graph):
        engine = SignedCliqueEngine(paper_graph)
        engine.enumerate(2, 1)
        victim = sorted(paper_graph.nodes(), key=repr)[0]
        engine.remove_node(victim)
        snapshot = engine.snapshot()
        assert not snapshot.has_node(victim)
        assert engine.enumerate(2, 1) == enumerate_signed_cliques(snapshot, 2, 1)
        engine.add_node("fresh")
        snapshot = engine.snapshot()
        assert engine.enumerate(2, 1) == enumerate_signed_cliques(snapshot, 2, 1)
        with pytest.raises(GraphError):
            engine.remove_node("never-there")

    def test_apply_edits_batch(self, paper_graph):
        engine = SignedCliqueEngine(paper_graph)
        engine.enumerate(2, 1)
        engine.apply_edits(
            [("add", "a", "b", "+"), ("flip", "a", "b", "-"), ("remove", "a", "b")]
        )
        snapshot = engine.snapshot()
        assert not snapshot.has_edge("a", "b")
        assert engine.enumerate(2, 1) == enumerate_signed_cliques(snapshot, 2, 1)
        with pytest.raises(GraphError):
            engine.apply_edits([("frobnicate", 1, 2)])

    def test_update_invalidates_old_fingerprint_entries(self, paper_graph):
        engine = SignedCliqueEngine(paper_graph)
        engine.enumerate_with_stats(2, 1)
        old_keys = set(engine.memory.keys())
        assert old_keys
        engine.add_edge("n1", "n2", "+")
        assert not (old_keys & set(engine.memory.keys()))
        assert engine.counters["entries_invalidated"] >= len(old_keys)

    @settings(max_examples=15, deadline=None)
    @given(
        edits=st.lists(
            st.tuples(
                st.sampled_from(["add", "remove", "flip"]),
                st.integers(min_value=0, max_value=11),
                st.integers(min_value=0, max_value=11),
                st.sampled_from(["+", "-"]),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_dynamic_consistency_property(self, edits):
        """After ANY edit sequence, every cached answer matches a
        from-scratch enumeration of the final graph."""
        base = gnp_signed(12, 0.4, negative_fraction=0.3, seed=3)
        engine = SignedCliqueEngine(base)
        settings_used = [(2.0, 1), (2.0, 2), (3.0, 1)]
        for alpha, k in settings_used:
            engine.enumerate(alpha, k)  # warm the caches pre-edit
        for op, u, v, sign in edits:
            if u == v:
                continue
            graph = engine.graph
            try:
                if op == "add":
                    engine.add_edge(u, v, sign)
                elif op == "remove":
                    engine.remove_edge(u, v)
                else:
                    engine.flip_sign(u, v, sign)
            except GraphError:
                # duplicate add / missing remove: engine state unchanged
                assert graph is engine.graph
        final = engine.snapshot()
        for alpha, k in settings_used:
            assert engine.enumerate(alpha, k) == enumerate_signed_cliques(
                final, alpha, k
            ), (alpha, k, edits)


class TestConcurrencyHammer:
    """N threads of mixed requests == some sequential interleaving."""

    def test_hammer_matches_sequential_replay(self, tmp_path):
        graph = gnp_signed(24, 0.35, negative_fraction=0.25, seed=19)
        engine = SignedCliqueEngine(
            graph,
            cache_dir=tmp_path / "cache",
            cache_mem_entries=3,  # force evictions mid-hammer
            record_requests=True,
        )
        nodes = sorted(graph.nodes(), key=repr)
        errors = []
        barrier = threading.Barrier(4)

        def client(worker):
            rng = random.Random(worker)
            try:
                barrier.wait()
                for step in range(8):
                    choice = rng.random()
                    alpha, k = GRID[rng.randrange(len(GRID))]
                    if choice < 0.35:
                        engine.enumerate_with_stats(alpha, k)
                    elif choice < 0.55:
                        engine.top_r(alpha, k, 3)
                    elif choice < 0.75:
                        engine.query_with_stats([rng.choice(nodes)], alpha, k)
                    elif choice < 0.9:
                        engine.enumerate(alpha, k)
                    else:
                        u, v = rng.sample(nodes, 2)
                        if engine.graph.has_edge(u, v):
                            engine.flip_sign(u, v, rng.choice(["+", "-"]))
                        else:
                            engine.add_edge(u, v, "+")
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=client, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Replay the lock's serialisation order sequentially on a fresh
        # engine: the final graph and every answer must coincide.
        replay = SignedCliqueEngine(graph, record_requests=False)
        for op, args in engine.request_log:
            if op in ("add_edge", "flip_sign"):
                getattr(replay, op)(*args)
            elif op == "remove_edge":
                replay.remove_edge(*args)
        assert graph_fingerprint(replay.graph) == graph_fingerprint(engine.graph)
        final = engine.snapshot()
        for alpha, k in GRID:
            assert engine.enumerate(alpha, k) == enumerate_signed_cliques(
                final, alpha, k
            ), ("post-hammer", alpha, k)
            assert_result_equal(
                engine.enumerate_with_stats(alpha, k),
                enumerate_with_stats(final, alpha, k),
                f"post-hammer stats ({alpha},{k})",
            )

    def test_no_torn_entries_under_concurrent_readers(self):
        graph = gnp_signed(20, 0.35, negative_fraction=0.25, seed=23)
        engine = SignedCliqueEngine(graph, cache_mem_entries=2)
        reference = {
            (alpha, k): enumerate_with_stats(graph, alpha, k) for alpha, k in GRID
        }
        errors = []

        def reader(worker):
            rng = random.Random(100 + worker)
            try:
                for _ in range(10):
                    alpha, k = GRID[rng.randrange(len(GRID))]
                    assert_result_equal(
                        engine.enumerate_with_stats(alpha, k),
                        reference[(alpha, k)],
                        f"reader {worker}",
                    )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=reader, args=(w,)) for w in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestObservability:
    def test_serve_counters_reach_prometheus_export(self, paper_graph):
        with obs.observing() as observer:
            engine = SignedCliqueEngine(paper_graph)
            engine.enumerate_with_stats(2, 1)
            engine.enumerate_with_stats(2, 1)
            engine.run_grid([2, 4], [1])
            engine.add_edge("p", "q", "+")
        text = prometheus_text(observer.registry)
        assert "repro_serve_requests_total" in text
        assert "repro_serve_memory_hits_total" in text
        assert "repro_serve_computes_total" in text
        assert "repro_serve_updates_total 1" in text
        # engine-local mirror agrees with the exported registry
        for line in text.splitlines():
            if line.startswith("repro_serve_requests_total"):
                assert int(line.split()[-1]) == engine.counters["requests"]

    def test_engine_emits_request_spans(self, paper_graph):
        with obs.observing() as observer:
            SignedCliqueEngine(paper_graph).enumerate(2, 1)
        assert "serve_request" in json.dumps(observer.tracer.to_dict())

    def test_cache_info_shape(self, paper_graph, tmp_path):
        engine = SignedCliqueEngine(paper_graph, cache_dir=tmp_path / "c")
        engine.enumerate(2, 1)
        info = engine.cache_info()
        assert info["memory"]["entries"] >= 1
        assert info["disk"] is not None
        assert info["counters"]["requests"] == 1
        assert 0.0 <= info["sharing_ratio"] <= 1.0
        assert "SignedCliqueEngine" in repr(engine)


class TestEntryKeys:
    def test_memory_and_disk_share_key_namespace(self, paper_graph, tmp_path):
        engine = SignedCliqueEngine(paper_graph, cache_dir=tmp_path / "c")
        engine.enumerate_with_stats(2, 1)
        key = entry_key(graph_fingerprint(paper_graph), AlphaK(2, 1), "all")
        assert key in engine.memory
        assert (tmp_path / "c" / f"{key}.json").exists()

    def test_warm_start_does_not_change_the_entry_key(self, paper_graph, tmp_path):
        """Seeded and unseeded top-r computes share one cache identity.

        The warm start only shapes *how* a miss is computed — the
        answer is identical either way — so the entry key must not
        mention it: a seeded compute's entry serves later unseeded
        requests and vice versa.
        """
        engine = SignedCliqueEngine(paper_graph, cache_dir=tmp_path / "c")
        engine.top_r_with_stats(2, 1, 2, warm_start="portfolio")
        key = entry_key(graph_fingerprint(paper_graph), AlphaK(2, 1), "top2")
        assert key in engine.memory
        assert (tmp_path / "c" / f"{key}.json").exists()
        # The unseeded request hits that same entry — no second compute.
        engine.top_r_with_stats(2, 1, 2)
        assert engine.counters["computes"] == 1
        assert engine.counters["memory_hits"] == 1


class TestWarmStartServing:
    """Memory hit == disk hit == seeded recompute == one-shot oracle."""

    def test_all_tiers_replay_the_seeded_compute(self, random_graph, tmp_path):
        cache = tmp_path / "cache"
        params = AlphaK(2, 2)
        oracle = MSCE(random_graph, params).top_r(3, warm_start="portfolio")
        unseeded_oracle = MSCE(random_graph, params).top_r(3)
        assert oracle.cliques == unseeded_oracle.cliques

        engine = SignedCliqueEngine(random_graph, cache_dir=cache)
        seeded = engine.top_r_with_stats(2, 2, 3, warm_start="portfolio")
        assert_result_equal(seeded, oracle, "seeded recompute")
        assert engine.counters["computes"] == 1

        # Memory hit: an *unseeded* request replays the seeded entry.
        warm = engine.top_r_with_stats(2, 2, 3)
        assert_result_equal(warm, oracle, "memory hit")
        assert engine.counters["computes"] == 1
        assert engine.counters["memory_hits"] == 1

        # Disk hit: a fresh engine on the same cache dir, asking with a
        # *different* strategy, still replays the stored entry.
        fresh = SignedCliqueEngine(random_graph, cache_dir=cache)
        disk = fresh.top_r_with_stats(2, 2, 3, warm_start="spectral")
        assert_result_equal(disk, oracle, "disk hit")
        assert fresh.counters["computes"] == 0
        assert fresh.counters["disk_hits"] == 1

    def test_cliques_tier_warm_start(self, random_graph):
        engine = SignedCliqueEngine(random_graph)
        seeded = engine.top_r(2, 2, 3, warm_start="degree")
        assert seeded == top_r_signed_cliques(random_graph, 2, 2, 3)

    def test_invalid_strategy_propagates(self, paper_graph):
        engine = SignedCliqueEngine(paper_graph)
        with pytest.raises(ParameterError):
            engine.top_r_with_stats(2, 1, 2, warm_start="zap")
        # The engine survives the rejected request.
        assert engine.top_r(2, 1, 1, warm_start="portfolio")


class TestServeGridCli:
    def test_serve_grid_text_and_json(self, tmp_path, capsys):
        path = tmp_path / "paper.txt"
        write_signed_edgelist(SignedGraph(PAPER_EDGES), path)
        cache = tmp_path / "cache"
        assert (
            cli_main(
                [
                    "serve-grid",
                    str(path),
                    "--alphas",
                    "2",
                    "3",
                    "--ks",
                    "1",
                    "--cache-dir",
                    str(cache),
                    "--cache-mem-entries",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "alpha=2 k=1" in out and "computed 2" in out
        # warm run serves from the disk cache and reports it
        assert (
            cli_main(
                [
                    "serve-grid",
                    str(path),
                    "--alphas",
                    "2",
                    "3",
                    "--ks",
                    "1",
                    "--cache-dir",
                    str(cache),
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["served_from_cache"] == 2
        assert payload["counters"]["disk_hits"] == 2
        assert len(payload["points"]) == 2


class TestEngineOnGenerators:
    def test_planted_partition_differential(self):
        background = gnp_signed(30, 0.1, negative_fraction=0.3, seed=2)
        graph, _ = planted_partition_graph(
            background,
            [CommunitySpec(6, density=1.0), CommunitySpec(5, density=0.9)],
            seed=2,
        )
        engine = SignedCliqueEngine(graph)
        for alpha, k in ((2, 1), (2, 2)):
            assert_result_equal(
                engine.enumerate_with_stats(alpha, k),
                enumerate_with_stats(graph, alpha, k),
                f"planted ({alpha},{k})",
            )
