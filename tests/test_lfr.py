"""Tests for the LFR-style signed benchmark generator."""

import pytest

from repro.exceptions import ParameterError
from repro.generators.lfr_like import lfr_like_signed
from repro.graphs import validate_graph


class TestLfrLikeSigned:
    def test_partition_covers_all_nodes(self):
        graph, communities = lfr_like_signed(n=200, seed=1)
        union = set().union(*communities)
        assert union == set(range(200))
        total = sum(len(c) for c in communities)
        assert total == 200  # disjoint

    def test_deterministic(self):
        a, _ = lfr_like_signed(n=150, seed=2)
        b, _ = lfr_like_signed(n=150, seed=2)
        assert a == b
        validate_graph(a)

    def test_mixing_parameter_controls_boundary(self):
        # Higher mu => more inter-community edges.
        def boundary_fraction(mu):
            graph, communities = lfr_like_signed(n=300, mu=mu, seed=3)
            membership = {}
            for index, members in enumerate(communities):
                for node in members:
                    membership[node] = index
            cross = sum(
                1 for u, v, _s in graph.edges() if membership[u] != membership[v]
            )
            return cross / graph.number_of_edges()

        assert boundary_fraction(0.05) < boundary_fraction(0.5)

    def test_sign_structure_follows_communities(self):
        graph, communities = lfr_like_signed(
            n=250, mu=0.3, internal_noise=0.0, external_noise=0.0, seed=4
        )
        membership = {}
        for index, members in enumerate(communities):
            for node in members:
                membership[node] = index
        for u, v, sign in graph.edges():
            if membership[u] == membership[v]:
                assert sign > 0
            else:
                assert sign < 0

    def test_average_degree_in_range(self):
        graph, _ = lfr_like_signed(n=400, average_degree=8.0, seed=5)
        mean = 2 * graph.number_of_edges() / graph.number_of_nodes()
        assert 4.0 <= mean <= 14.0  # duplicates/self-targets shave the mean

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            lfr_like_signed(n=2)
        with pytest.raises(ParameterError):
            lfr_like_signed(mu=1.0)
        with pytest.raises(ParameterError):
            lfr_like_signed(community_size_range=(1, 5))

    def test_detection_pipeline_scores_well_at_low_mixing(self):
        # End-to-end: at low mixing with clean signs, the positive-core
        # components recover the planted communities nearly perfectly.
        from repro.baselines import core_communities
        from repro.core import AlphaK
        from repro.metrics.nmi import omega_index

        graph, truth = lfr_like_signed(
            n=200, mu=0.05, internal_noise=0.0, external_noise=0.0,
            community_size_range=(15, 40), seed=6,
        )
        detected = core_communities(graph, AlphaK(1, 1))
        score = omega_index(
            [set(c) for c in detected], [set(c) for c in truth], universe=graph.nodes()
        )
        assert score > 0.5
