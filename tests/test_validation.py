"""Unit tests for the internal-index consistency auditor."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import SignedGraph, validate_graph, validation_errors


class TestValidation:
    def test_clean_graph_passes(self, paper_graph):
        assert validation_errors(paper_graph) == []
        validate_graph(paper_graph)

    def test_detects_broken_symmetry(self):
        graph = SignedGraph([(1, 2, "+")])
        del graph._sign[2][1]
        errors = validation_errors(graph)
        assert any("symmetric" in error for error in errors)

    def test_detects_wrong_sign_index(self):
        graph = SignedGraph([(1, 2, "+")])
        graph._pos[1].discard(2)
        graph._neg[1].add(2)
        errors = validation_errors(graph)
        assert errors
        with pytest.raises(GraphError):
            validate_graph(graph)

    def test_detects_stale_index_entries(self):
        graph = SignedGraph([(1, 2, "+")])
        graph._pos[1].add(42)
        assert any("stale" in error for error in validation_errors(graph))

    def test_detects_counter_drift(self):
        graph = SignedGraph([(1, 2, "+")])
        graph._num_pos_edges = 7
        assert any("counter" in error for error in validation_errors(graph))

    def test_detects_non_canonical_sign(self):
        graph = SignedGraph([(1, 2, "+")])
        graph._sign[1][2] = 5
        graph._sign[2][1] = 5
        assert any("non-canonical" in error for error in validation_errors(graph))

    def test_survives_mutation_sequences(self, paper_graph):
        paper_graph.set_sign(1, 2, "-")
        paper_graph.remove_node(7)
        paper_graph.add_edge(9, 1, "+")
        paper_graph.remove_edge(9, 1)
        validate_graph(paper_graph)
