"""Cross-validation of the fastpath CSR/bitset kernels against the pure path.

The fastpath subsystem (``repro.fastpath``) re-implements the hot
kernels — core decomposition, ICore, ego-triangle counting, MCCore
peeling and the MSCE branch-and-bound — on compact CSR arrays and
big-int bitmasks. Correctness is argued by *bit-identical* agreement
with the pure-Python reference path on the generator suite (random,
planted-community, LFR-like) and on arbitrary hypothesis graphs,
including identical :class:`repro.core.bbe.SearchStats` counters, which
proves the two paths explore the same search tree node for node.
"""

import itertools
import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.kcore import core_numbers, icore
from repro.algorithms.triangles import all_ego_triangle_degrees, triangle_count
from repro.core import MSCE, AlphaK, mccore_basic, mccore_new
from repro.core.reduction import reduce_graph, reduction_components
from repro.exceptions import ParameterError
from repro.fastpath import (
    BACKENDS,
    CompiledGraph,
    IntBitset,
    as_compiled,
    bit_count,
    compile_graph,
    iter_bits,
    resolve_backend,
)
from repro.fastpath.bitset import _bit_count_fallback
from repro.fastpath.kernels import (
    core_numbers_fast,
    ego_triangle_degrees_fast,
    mccore_new_mask,
    reduce_mask,
    triangle_count_fast,
)
from repro.generators import (
    CommunitySpec,
    gnp_signed,
    lfr_like_signed,
    planted_partition_graph,
)
from repro.graphs import SignedGraph
from tests.conftest import PAPER_EDGES


def _generator_suite():
    """One representative graph per generator family (plus Fig. 1)."""
    paper = SignedGraph(PAPER_EDGES)
    random_small = gnp_signed(24, 0.45, negative_fraction=0.25, seed=11)
    random_sparse = gnp_signed(60, 0.08, negative_fraction=0.4, seed=12)
    planted, _communities = planted_partition_graph(
        gnp_signed(50, 0.06, negative_fraction=0.3, seed=13),
        [CommunitySpec(8, 1.0, 0.1), CommunitySpec(6), CommunitySpec(7, 0.9, 0.05)],
        seed=14,
    )
    lfr, _truth = lfr_like_signed(n=70, average_degree=6.0, seed=15)
    return [
        ("paper", paper),
        ("random-dense", random_small),
        ("random-sparse", random_sparse),
        ("planted", planted),
        ("lfr-like", lfr),
    ]


GRAPHS = _generator_suite()
PARAM_GRID = [AlphaK(3, 1), AlphaK(2, 1), AlphaK(1.5, 2), AlphaK(0, 1)]


def _cases():
    return [
        pytest.param(graph, id=name)
        for name, graph in GRAPHS
    ]


class TestCompiledGraph:
    def test_roundtrip_preserves_graph(self):
        for _name, graph in GRAPHS:
            compiled = compile_graph(graph)
            assert compiled.to_signed_graph() == graph
            assert set(compiled.nodes) == graph.node_set()

    def test_pickle_roundtrip(self):
        graph = dict(GRAPHS)["random-dense"]
        compiled = compile_graph(graph)
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.nodes == compiled.nodes
        assert clone.source == graph

    def test_mask_helpers(self):
        graph = SignedGraph(PAPER_EDGES)
        compiled = compile_graph(graph)
        mask = compiled.mask_from_nodes([1, 2, 3, 999])  # absent nodes ignored
        assert compiled.nodes_from_mask(mask) == {1, 2, 3}
        assert bit_count(compiled.full_mask) == compiled.n

    def test_bad_sign_selector_raises(self):
        compiled = compile_graph(SignedGraph(PAPER_EDGES))
        with pytest.raises(ParameterError):
            compiled.csr("bogus")

    def test_as_compiled(self):
        graph = SignedGraph(PAPER_EDGES)
        assert as_compiled(graph) is None
        compiled = compile_graph(graph)
        assert as_compiled(compiled) is compiled


class TestBitset:
    def test_basic_set_operations(self):
        a = IntBitset([0, 2, 5])
        b = IntBitset([2, 5, 9])
        assert sorted(a & b) == [2, 5]
        assert sorted(a | b) == [0, 2, 5, 9]
        assert sorted(a - b) == [0]
        assert len(a) == 3 and 5 in a and 1 not in a
        assert a.intersection_count(b) == 2
        assert not a.isdisjoint(b)
        assert IntBitset([2]).issubset(a)

    def test_iter_bits_matches_membership(self):
        rng = random.Random(3)
        indices = sorted(rng.sample(range(200), 40))
        mask = 0
        for i in indices:
            mask |= 1 << i
        assert list(iter_bits(mask)) == indices
        assert bit_count(mask) == 40

    def test_bit_count_fallback_matches_reference(self):
        """The py<3.10 chunked popcount must agree with the reference count,
        including on huge masks where the old ``bin(mask)`` path was the
        quadratic-ish hazard."""
        rng = random.Random(9)
        masks = [0, 1, (1 << 64) - 1, 1 << 4096, (1 << 100_000) - 1]
        masks += [rng.getrandbits(bits) for bits in (7, 63, 64, 65, 1000, 50_000)]
        for mask in masks:
            assert _bit_count_fallback(mask) == bin(mask).count("1")


class TestKernelCrossValidation:
    @pytest.mark.parametrize("graph", _cases())
    @pytest.mark.parametrize("sign", ["all", "positive", "negative"])
    def test_core_numbers_match(self, graph, sign):
        compiled = compile_graph(graph)
        assert core_numbers(compiled, sign=sign) == core_numbers(graph, sign=sign)

    @pytest.mark.parametrize("graph", _cases())
    def test_icore_matches(self, graph):
        compiled = compile_graph(graph)
        nodes = sorted(graph.nodes(), key=repr)
        for tau in (1, 2, 3):
            for sign in ("all", "positive"):
                for fixed in ((), (nodes[0],), tuple(nodes[:2])):
                    pure = icore(graph, fixed=fixed, tau=tau, sign=sign)
                    fast = icore(compiled, fixed=fixed, tau=tau, sign=sign)
                    assert fast == pure

    @pytest.mark.parametrize("graph", _cases())
    def test_icore_within_matches(self, graph):
        compiled = compile_graph(graph)
        nodes = sorted(graph.nodes(), key=repr)
        within = set(nodes[: max(4, len(nodes) // 2)])
        pure = icore(graph, fixed=(), tau=2, within=within, sign="all")
        fast = icore(compiled, fixed=(), tau=2, within=within, sign="all")
        assert fast == pure

    def test_icore_unknown_fixed_node(self):
        compiled = compile_graph(SignedGraph(PAPER_EDGES))
        assert icore(compiled, fixed=["nope"], tau=1) == (False, set())

    @pytest.mark.parametrize("graph", _cases())
    def test_triangle_count_matches(self, graph):
        compiled = compile_graph(graph)
        assert triangle_count(compiled) == triangle_count(graph)

    @pytest.mark.parametrize("graph", _cases())
    def test_ego_triangle_degrees_match(self, graph):
        compiled = compile_graph(graph)
        assert all_ego_triangle_degrees(compiled) == all_ego_triangle_degrees(graph)

    @pytest.mark.parametrize("graph", _cases())
    @pytest.mark.parametrize("params", PARAM_GRID, ids=str)
    def test_mccore_matches(self, graph, params):
        compiled = compile_graph(graph)
        pure = mccore_new(graph, params)
        assert mccore_new(compiled, params) == pure
        assert mccore_basic(compiled, params) == pure
        assert mccore_basic(graph, params) == pure

    @pytest.mark.parametrize("graph", _cases())
    @pytest.mark.parametrize("method", ["none", "positive-core", "mcbasic", "mcnew"])
    def test_reduce_graph_matches(self, graph, method):
        compiled = compile_graph(graph)
        params = AlphaK(2, 1)
        assert reduce_graph(compiled, params, method=method) == reduce_graph(
            graph, params, method=method
        )

    @pytest.mark.parametrize("graph", _cases())
    def test_reduction_components_match(self, graph):
        compiled = compile_graph(graph)
        params = AlphaK(1.5, 1)
        pure = sorted(
            (frozenset(c) for c in reduction_components(graph, params)), key=sorted
        )
        fast = sorted(
            (frozenset(c) for c in reduction_components(compiled, params)), key=sorted
        )
        assert fast == pure


class TestSearchCrossValidation:
    @pytest.mark.parametrize("graph", _cases())
    @pytest.mark.parametrize("params", PARAM_GRID, ids=str)
    def test_msce_identical_cliques_and_stats(self, graph, params):
        compiled = compile_graph(graph)
        pure = MSCE(graph, params).enumerate_all()
        fast = MSCE(compiled, params).enumerate_all()
        assert [c.nodes for c in fast.cliques] == [c.nodes for c in pure.cliques]
        # Identical counters prove the two paths walk the same tree.
        assert fast.stats.as_dict() == pure.stats.as_dict()

    @pytest.mark.parametrize("graph", _cases())
    @pytest.mark.parametrize("selection", ["first", "random"])
    def test_other_selections_match(self, graph, selection):
        params = AlphaK(1.5, 1)
        compiled = compile_graph(graph)
        pure = MSCE(graph, params, selection=selection, seed=5).enumerate_all()
        fast = MSCE(compiled, params, selection=selection, seed=5).enumerate_all()
        assert [c.nodes for c in fast.cliques] == [c.nodes for c in pure.cliques]
        assert fast.stats.as_dict() == pure.stats.as_dict()

    @pytest.mark.parametrize("graph", _cases())
    def test_paper_maxtest_matches(self, graph):
        params = AlphaK(2, 1)
        compiled = compile_graph(graph)
        pure = MSCE(graph, params, maxtest="paper").enumerate_all()
        fast = MSCE(compiled, params, maxtest="paper").enumerate_all()
        assert {c.nodes for c in fast.cliques} == {c.nodes for c in pure.cliques}

    @pytest.mark.parametrize("graph", _cases())
    @pytest.mark.parametrize("r", [1, 3])
    def test_top_r_matches(self, graph, r):
        params = AlphaK(1.5, 1)
        compiled = compile_graph(graph)
        pure = MSCE(graph, params).top_r(r)
        fast = MSCE(compiled, params).top_r(r)
        assert [c.nodes for c in fast.cliques] == [c.nodes for c in pure.cliques]
        assert fast.stats.as_dict() == pure.stats.as_dict()

    def test_compile_false_forces_pure_path(self):
        graph = dict(GRAPHS)["random-dense"]
        compiled = compile_graph(graph)
        searcher = MSCE(compiled, AlphaK(2, 1), compile=False)
        assert searcher.compiled is None
        pure = MSCE(graph, AlphaK(2, 1)).enumerate_all()
        assert {c.nodes for c in searcher.enumerate_all().cliques} == {
            c.nodes for c in pure.cliques
        }

    def test_enumerate_seeded_matches(self):
        graph = dict(GRAPHS)["paper"]
        compiled = compile_graph(graph)
        params = AlphaK(3, 1)
        space = graph.node_set()
        pure = MSCE(graph, params).enumerate_seeded(set(space), frozenset({1}))
        fast = MSCE(compiled, params).enumerate_seeded(set(space), frozenset({1}))
        assert {c.nodes for c in fast.cliques} == {c.nodes for c in pure.cliques}

    def test_every_fast_result_verifies(self):
        for _name, graph in GRAPHS:
            compiled = compile_graph(graph)
            for clique in MSCE(compiled, AlphaK(1.5, 1)).enumerate_all().cliques:
                clique.verify(graph)


class TestBackendSweep:
    """3-way kernel-tier differential: python / vectorized / native.

    Every tier must return bit-identical outputs — kernel by kernel, and
    end-to-end through MSCE including the ``SearchStats`` counters.
    ``native`` degrades silently (to ``vectorized`` without numba, all
    the way to ``python`` without numpy), so the sweep is meaningful on
    every CI leg: a degraded tier simply re-checks the tier it landed on.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("graph", _cases())
    def test_kernel_outputs_identical(self, graph, backend):
        compiled = compile_graph(graph)
        for sign in ("all", "positive", "negative"):
            assert core_numbers_fast(
                compiled, sign, backend=backend
            ) == core_numbers_fast(compiled, sign, backend="python")
        assert triangle_count_fast(compiled, backend=backend) == triangle_count_fast(
            compiled, backend="python"
        )
        nodes = sorted(graph.nodes(), key=repr)
        for within in (None, set(nodes[: max(3, len(nodes) // 2)])):
            assert ego_triangle_degrees_fast(
                compiled, within=within, backend=backend
            ) == ego_triangle_degrees_fast(compiled, within=within, backend="python")
        for params in PARAM_GRID:
            assert mccore_new_mask(compiled, params, backend=backend) == mccore_new_mask(
                compiled, params, backend="python"
            )
        for method in ("none", "positive-core", "mcbasic", "mcnew"):
            assert reduce_mask(
                compiled, AlphaK(2, 1), method=method, backend=backend
            ) == reduce_mask(compiled, AlphaK(2, 1), method=method, backend="python")

    @pytest.mark.parametrize("params", PARAM_GRID, ids=str)
    @pytest.mark.parametrize("graph", _cases())
    def test_msce_identical_across_backends(self, graph, params):
        compiled = compile_graph(graph)
        oracle = MSCE(compiled, params, backend="python").enumerate_all()
        for backend in BACKENDS:
            result = MSCE(compiled, params, backend=backend).enumerate_all()
            assert [c.nodes for c in result.cliques] == [
                c.nodes for c in oracle.cliques
            ], backend
            assert result.stats.as_dict() == oracle.stats.as_dict(), backend
            # The stamped tier is metadata, not part of stats equality.
            assert result.stats == oracle.stats
            assert result.stats.backend == resolve_backend(backend)


# -- hypothesis: arbitrary small graphs, arbitrary (alpha, k) ----------------

graph_specs = st.integers(min_value=2, max_value=9).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.sampled_from([0, 0, 1, 1, 1, -1]),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        ),
    )
)

param_specs = st.tuples(
    st.sampled_from([0, 1, 1.5, 2, 3]),
    st.integers(min_value=0, max_value=3),
)


def _build(spec) -> SignedGraph:
    n, signs = spec
    graph = SignedGraph(nodes=range(n))
    for (u, v), sign in zip(itertools.combinations(range(n), 2), signs):
        if sign:
            graph.add_edge(u, v, sign)
    return graph


@settings(max_examples=100, deadline=None)
@given(graph_specs, param_specs)
def test_hypothesis_fast_search_identical(spec, param_spec):
    graph = _build(spec)
    alpha, k = param_spec
    params = AlphaK(alpha, k)
    compiled = compile_graph(graph)
    pure = MSCE(graph, params, audit=True).enumerate_all()
    fast = MSCE(compiled, params, audit=True).enumerate_all()
    assert [c.nodes for c in fast.cliques] == [c.nodes for c in pure.cliques]
    assert fast.stats.as_dict() == pure.stats.as_dict()


@settings(max_examples=60, deadline=None)
@given(graph_specs, param_specs)
def test_hypothesis_mccore_identical(spec, param_spec):
    graph = _build(spec)
    alpha, k = param_spec
    params = AlphaK(alpha, k)
    compiled = compile_graph(graph)
    assert mccore_new(compiled, params) == mccore_new(graph, params)
    assert mccore_basic(compiled, params) == mccore_basic(graph, params)


@settings(max_examples=60, deadline=None)
@given(graph_specs)
def test_hypothesis_core_numbers_identical(spec):
    graph = _build(spec)
    compiled = compile_graph(graph)
    for sign in ("all", "positive", "negative"):
        assert core_numbers(compiled, sign=sign) == core_numbers(graph, sign=sign)
