"""Fast-configuration tests for every experiment driver.

The benchmark suite runs the drivers at full workload; these tests run
each with a minimal sweep so `pytest tests/` alone exercises every
driver code path (series shapes, notes, timeout handling).
"""

import pytest

from repro.experiments import (
    ablation_pruning_rules,
    ablation_reduction,
    fig3_reduction_time,
    fig5_enumeration_time,
    fig7_topr_time,
    fig8_scalability,
    fig11_precision,
    table2_conductance,
)


class TestReductionDrivers:
    def test_fig3_series_alignment(self):
        exhibits = fig3_reduction_time(names=("slashdot",), alphas=(4,), ks=(3,))
        assert len(exhibits) == 2
        for exhibit in exhibits:
            labels = {series.label for series in exhibit.series}
            assert labels == {"MCNew", "MCBasic"}
            for series in exhibit.series:
                assert len(series.x) == 1
                assert series.y[0] >= 0


class TestEnumerationDrivers:
    def test_fig5_single_point(self):
        exhibits = fig5_enumeration_time(
            names=("youtube",), alphas=(4,), ks=(3,), limit=10
        )
        assert len(exhibits) == 2
        for exhibit in exhibits:
            by_label = exhibit.series_by_label()
            assert set(by_label) == {"MSCE-G", "MSCE-R"}

    def test_fig5_timeout_notes(self):
        exhibits = fig5_enumeration_time(
            names=("slashdot",), alphas=(2,), ks=(1,), limit=1e-6
        )
        # An absurdly small cap must be reported, not crash.
        assert any(exhibit.notes for exhibit in exhibits)

    def test_fig7_axes(self):
        exhibits = fig7_topr_time(
            names=("slashdot",), alphas=(4,), ks=(3,), rs=(5,), limit=10
        )
        assert len(exhibits) == 3  # alpha, k, r axes

    def test_fig8_small_fractions(self):
        exhibits = fig8_scalability(fractions=(0.2, 1.0), limit=10)
        assert len(exhibits) == 2
        for exhibit in exhibits:
            assert [str(x) for x in exhibit.series[0].x] == ["20%", "100%"]


class TestEffectivenessDrivers:
    def test_table2_small(self):
        exhibit = table2_conductance(names=("youtube",), alpha=2, k=3, r=5, limit=10)
        by_label = exhibit.series_by_label()
        assert set(by_label) == {"Core", "SignedCore", "TClique", "SignedClique"}
        for series in exhibit.series:
            assert len(series.y) == 1

    def test_fig11_small(self):
        exhibits = fig11_precision(alphas=(4,), ks=(3,), r=10, limit=10)
        assert len(exhibits) == 2
        for exhibit in exhibits:
            for series in exhibit.series:
                assert all(0.0 <= value <= 1.0 for value in series.y)


class TestAblationDrivers:
    def test_pruning_ablation_rows(self):
        exhibit = ablation_pruning_rules(alpha=4, k=3, limit=10)
        recursions = exhibit.series_by_label()["recursions"]
        assert len(recursions.y) == 4

    def test_reduction_ablation_rows(self):
        exhibit = ablation_reduction(limit=10)
        survivors = exhibit.series_by_label()["surviving nodes"]
        assert survivors.x == ["none", "positive-core", "mcbasic", "mcnew"]
