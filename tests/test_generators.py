"""Unit tests for the synthetic graph generators."""

import random

import pytest

from repro.exceptions import ParameterError
from repro.generators import (
    CommunitySpec,
    close_triangles,
    dblp_like_coauthorship,
    flysign_like,
    gnp_signed,
    heavy_tailed_sizes,
    plant_community,
    planted_partition_graph,
    preferential_attachment,
    random_edge_subsample,
    random_node_subsample,
    random_sign_assignment,
    sprinkle_negative_edges,
)
from repro.graphs import SignedGraph, validate_graph


class TestGnpSigned:
    def test_deterministic_per_seed(self):
        a = gnp_signed(20, 0.3, 0.4, seed=7)
        b = gnp_signed(20, 0.3, 0.4, seed=7)
        assert a == b

    def test_node_count_preserved(self):
        graph = gnp_signed(15, 0.1, seed=1)
        assert graph.number_of_nodes() == 15

    def test_extreme_probabilities(self):
        empty = gnp_signed(6, 0.0, seed=1)
        assert empty.number_of_edges() == 0
        full = gnp_signed(6, 1.0, 0.0, seed=1)
        assert full.number_of_edges() == 15
        assert full.number_of_negative_edges() == 0

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            gnp_signed(-1, 0.5)
        with pytest.raises(ParameterError):
            gnp_signed(5, 1.5)
        with pytest.raises(ParameterError):
            gnp_signed(5, 0.5, negative_fraction=2.0)


class TestRandomSignAssignment:
    def test_exact_negative_count(self):
        graph = gnp_signed(30, 0.3, 0.0, seed=3)
        signed = random_sign_assignment(graph, 0.30, seed=4)
        expected = round(graph.number_of_edges() * 0.30)
        assert signed.number_of_negative_edges() == expected
        assert signed.number_of_edges() == graph.number_of_edges()

    def test_topology_preserved(self):
        graph = gnp_signed(20, 0.4, 0.5, seed=5)
        signed = random_sign_assignment(graph, 0.3, seed=6)
        for u, v, _sign in graph.edges():
            assert signed.has_edge(u, v)

    def test_input_untouched(self):
        graph = gnp_signed(10, 0.5, 0.0, seed=7)
        random_sign_assignment(graph, 1.0, seed=8)
        assert graph.number_of_negative_edges() == 0


class TestSubsampling:
    def test_edge_subsample_fraction(self):
        graph = gnp_signed(30, 0.4, 0.3, seed=9)
        sample = random_edge_subsample(graph, 0.5, seed=10)
        assert sample.number_of_edges() == round(graph.number_of_edges() * 0.5)
        for u, v, sign in sample.edges():
            assert graph.sign(u, v) == sign

    def test_node_subsample_is_induced(self):
        graph = gnp_signed(30, 0.4, 0.3, seed=11)
        sample = random_node_subsample(graph, 0.5, seed=12)
        assert sample.number_of_nodes() == 15
        for u, v, sign in sample.edges():
            assert graph.sign(u, v) == sign

    def test_full_fraction_identity(self):
        graph = gnp_signed(10, 0.5, 0.3, seed=13)
        assert random_edge_subsample(graph, 1.0, seed=1).number_of_edges() == graph.number_of_edges()


class TestSocialGenerators:
    def test_preferential_attachment_edge_count(self):
        graph = preferential_attachment(50, 3, seed=14)
        assert graph.number_of_nodes() == 50
        # seed clique C(4,2)=6 plus 3 per remaining node.
        assert graph.number_of_edges() == 6 + 3 * 46
        validate_graph(graph)

    def test_preferential_attachment_validation(self):
        with pytest.raises(ParameterError):
            preferential_attachment(3, 3)
        with pytest.raises(ParameterError):
            preferential_attachment(10, 0)

    def test_close_triangles_adds_edges(self):
        graph = preferential_attachment(60, 2, seed=15)
        before = graph.number_of_edges()
        added = close_triangles(graph, 30, seed=16)
        assert graph.number_of_edges() == before + added
        assert added > 0

    def test_close_triangles_empty_graph(self):
        assert close_triangles(SignedGraph(), 5, seed=1) == 0


class TestPlanted:
    def test_spec_validation(self):
        with pytest.raises(ParameterError):
            CommunitySpec(size=1)
        with pytest.raises(ParameterError):
            CommunitySpec(size=3, density=0.0)
        with pytest.raises(ParameterError):
            CommunitySpec(size=3, negative_fraction=1.0)

    def test_plant_full_clique(self):
        graph = SignedGraph(nodes=range(6))
        rng = random.Random(17)
        plant_community(graph, list(range(5)), CommunitySpec(size=5), rng)
        assert graph.number_of_edges() == 10
        assert graph.number_of_negative_edges() == 0

    def test_plant_size_mismatch(self):
        graph = SignedGraph(nodes=range(6))
        with pytest.raises(ParameterError):
            plant_community(graph, [0, 1], CommunitySpec(size=3), random.Random(1))

    def test_planted_partition_returns_communities(self):
        background = preferential_attachment(80, 2, seed=18)
        specs = [CommunitySpec(size=6), CommunitySpec(size=5, negative_fraction=0.2)]
        graph, communities = planted_partition_graph(background, specs, seed=19)
        assert len(communities) == 2
        assert all(len(c) == spec.size for c, spec in zip(communities, specs))
        # Planted cliques actually exist in the output.
        first = communities[0]
        for u in first:
            assert len(graph.neighbor_keys(u) & first) == len(first) - 1
        # Background untouched.
        assert background.number_of_nodes() == 80

    def test_heavy_tailed_sizes_in_range(self):
        rng = random.Random(20)
        sizes = heavy_tailed_sizes(200, 4, 20, rng)
        assert all(4 <= size <= 20 for size in sizes)
        # Heavy tail: small sizes dominate.
        assert sum(1 for size in sizes if size <= 8) > sum(1 for size in sizes if size > 12)

    def test_heavy_tailed_invalid_range(self):
        with pytest.raises(ParameterError):
            heavy_tailed_sizes(5, 1, 10, random.Random(1))


class TestSprinkle:
    def test_flips_positive_edges(self):
        graph = gnp_signed(12, 0.6, 0.0, seed=21)
        flipped = sprinkle_negative_edges(graph, 5, seed=22)
        assert flipped == 5
        assert graph.number_of_negative_edges() == 5

    def test_respects_candidate_scope(self):
        graph = gnp_signed(12, 0.8, 0.0, seed=23)
        sprinkle_negative_edges(graph, 100, candidates={0, 1, 2}, seed=24)
        for u, v in graph.negative_edges():
            assert u in {0, 1, 2} and v in {0, 1, 2}


class TestDomainGenerators:
    def test_dblp_recipe_properties(self):
        graph, groups = dblp_like_coauthorship(
            authors=300, groups=20, papers=600, consortium_count=1, seed=25
        )
        assert graph.number_of_nodes() == 300
        assert graph.number_of_negative_edges() > graph.number_of_positive_edges() * 0.5
        assert len(groups) == 20
        validate_graph(graph)

    def test_dblp_determinism(self):
        a, _ = dblp_like_coauthorship(authors=200, groups=10, papers=300, seed=26)
        b, _ = dblp_like_coauthorship(authors=200, groups=10, papers=300, seed=26)
        assert a == b

    def test_dblp_parameter_validation(self):
        with pytest.raises(ParameterError):
            dblp_like_coauthorship(authors=5, groups=2, papers=10, group_size_range=(8, 10))
        with pytest.raises(ParameterError):
            dblp_like_coauthorship(authors=50, groups=2, papers=10, team_size_range=(1, 3))

    def test_flysign_returns_ground_truth(self):
        graph, complexes = flysign_like(
            proteins=200, complexes=8, complex_size_range=(4, 12),
            background_edges=100, satellite_count=6, pathway_count=2,
            pathway_size=8, seed=27,
        )
        assert graph.number_of_nodes() == 200
        assert len(complexes) == 8
        assert all(members <= graph.node_set() for members in complexes)
        assert graph.number_of_negative_edges() > 0
        validate_graph(graph)
