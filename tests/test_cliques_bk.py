"""Unit tests for Bron–Kerbosch maximal clique enumeration.

Cross-validated against networkx's implementation on random graphs.
"""

import random

import networkx as nx

from repro.algorithms import common_neighbors, is_clique, maximal_cliques, maximum_clique
from repro.graphs import SignedGraph
from tests.conftest import make_random_signed_graph


def _to_networkx(graph: SignedGraph, sign: str = "all") -> nx.Graph:
    result = nx.Graph()
    result.add_nodes_from(graph.nodes())
    for u, v, edge_sign in graph.edges():
        if sign == "all" or (sign == "positive" and edge_sign > 0):
            result.add_edge(u, v)
    return result


class TestMaximalCliques:
    def test_triangle_plus_tail(self):
        graph = SignedGraph([(1, 2, "+"), (2, 3, "-"), (1, 3, "+"), (3, 4, "+")])
        cliques = {frozenset(c) for c in maximal_cliques(graph)}
        assert cliques == {frozenset({1, 2, 3}), frozenset({3, 4})}

    def test_isolated_node_is_singleton_clique(self):
        graph = SignedGraph([(1, 2, "+")], nodes=["solo"])
        cliques = {frozenset(c) for c in maximal_cliques(graph)}
        assert frozenset({"solo"}) in cliques

    def test_positive_sign_mode_ignores_negative_edges(self, paper_graph):
        positive_cliques = {frozenset(c) for c in maximal_cliques(paper_graph, sign="positive")}
        # {v1..v5} contains the negative pair (v2, v3), so the biggest
        # positive cliques inside are the two 4-sets of Example 1.
        assert frozenset({1, 2, 4, 5}) in positive_cliques
        assert frozenset({1, 3, 4, 5}) in positive_cliques
        assert frozenset({1, 2, 3, 4, 5}) not in positive_cliques

    def test_matches_networkx_on_random_graphs(self):
        rng = random.Random(13)
        for _ in range(30):
            graph = make_random_signed_graph(rng)
            ours = {frozenset(c) for c in maximal_cliques(graph)}
            theirs = {frozenset(c) for c in nx.find_cliques(_to_networkx(graph))}
            assert ours == theirs

    def test_matches_networkx_positive_mode(self):
        rng = random.Random(14)
        for _ in range(15):
            graph = make_random_signed_graph(rng)
            ours = {frozenset(c) for c in maximal_cliques(graph, sign="positive")}
            theirs = {
                frozenset(c) for c in nx.find_cliques(_to_networkx(graph, "positive"))
            }
            assert ours == theirs

    def test_without_degeneracy_order_same_result(self):
        rng = random.Random(15)
        for _ in range(10):
            graph = make_random_signed_graph(rng)
            ordered = {frozenset(c) for c in maximal_cliques(graph, use_degeneracy_order=True)}
            plain = {frozenset(c) for c in maximal_cliques(graph, use_degeneracy_order=False)}
            assert ordered == plain

    def test_within_scope(self, paper_graph):
        cliques = {frozenset(c) for c in maximal_cliques(paper_graph, within={1, 2, 3})}
        assert cliques == {frozenset({1, 2, 3})}

    def test_empty_scope(self, paper_graph):
        assert list(maximal_cliques(paper_graph, within=set())) == []


class TestMaximumClique:
    def test_paper_graph(self, paper_graph):
        assert maximum_clique(paper_graph) == frozenset({1, 2, 3, 4, 5})

    def test_empty_graph(self):
        assert maximum_clique(SignedGraph()) == frozenset()


class TestIsClique:
    def test_small_cases(self, paper_graph):
        assert is_clique(paper_graph, {1, 2, 3, 4, 5})
        assert not is_clique(paper_graph, {1, 2, 8})
        assert is_clique(paper_graph, {1})
        assert is_clique(paper_graph, set())

    def test_unknown_node(self, paper_graph):
        assert not is_clique(paper_graph, {1, 42})

    def test_positive_mode(self, paper_graph):
        assert not is_clique(paper_graph, {1, 2, 3}, sign="positive")
        assert is_clique(paper_graph, {1, 2, 4}, sign="positive")


class TestCommonNeighbors:
    def test_matches_paper_structure(self, paper_graph):
        assert common_neighbors(paper_graph, {1, 2, 3}) == {4, 5}
        assert common_neighbors(paper_graph, {1, 2, 3, 4, 5}) == set()

    def test_within_and_sign(self, paper_graph):
        assert common_neighbors(paper_graph, {1, 2}, within={4}) == {4}
        assert common_neighbors(paper_graph, {2, 5}, sign="positive") == {1, 4, 7}

    def test_empty_query_returns_scope(self, paper_graph):
        assert common_neighbors(paper_graph, set(), within={1, 2}) == {1, 2}
