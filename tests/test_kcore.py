"""Unit tests for k-core computations and the paper's ICore (Algorithm 1)."""

import random

import pytest

from repro.algorithms import (
    core_decomposition,
    core_numbers,
    has_k_core,
    icore,
    k_core,
    max_core_number,
    positive_core,
)
from repro.algorithms.kcore import icore_tracked
from repro.exceptions import ParameterError
from repro.graphs import SignedGraph
from tests.conftest import make_random_signed_graph


class TestCoreNumbers:
    def test_clique_core_numbers(self):
        clique = SignedGraph([(u, v, "+") for u in range(5) for v in range(u + 1, 5)])
        assert set(core_numbers(clique).values()) == {4}

    def test_path_core_numbers(self):
        path = SignedGraph([(0, 1, "+"), (1, 2, "-"), (2, 3, "+")])
        assert set(core_numbers(path).values()) == {1}

    def test_core_numbers_definition_on_random_graphs(self):
        # A node's core number c means: it survives peeling at c but not c+1.
        rng = random.Random(5)
        for _ in range(20):
            graph = make_random_signed_graph(rng)
            numbers = core_numbers(graph)
            for node, c in numbers.items():
                assert node in k_core(graph, c)
                assert node not in k_core(graph, c + 1)

    def test_positive_core_numbers(self, paper_graph):
        numbers = core_numbers(paper_graph, sign="positive")
        # v8 has only one positive neighbour (v6).
        assert numbers[8] == 1
        assert max(numbers.values()) == 3

    def test_empty_graph(self):
        assert core_numbers(SignedGraph()) == {}
        assert max_core_number(SignedGraph()) == 0

    def test_core_decomposition_partitions(self, paper_graph):
        shells = core_decomposition(paper_graph)
        total = sum(len(members) for members in shells.values())
        assert total == 8


class TestKCore:
    def test_paper_positive_3core(self, paper_graph):
        # Example 2: the maximal 3-core of G+ is {v1..v7}.
        assert positive_core(paper_graph, 3) == {1, 2, 3, 4, 5, 6, 7}

    def test_k_core_degrees_at_least_k(self):
        rng = random.Random(6)
        for _ in range(20):
            graph = make_random_signed_graph(rng)
            for k in range(4):
                members = k_core(graph, k)
                for node in members:
                    assert len(graph.neighbors(node) & members) >= k

    def test_maximality(self):
        # No node outside the k-core can be added back.
        rng = random.Random(7)
        graph = make_random_signed_graph(rng, n_range=(8, 12))
        members = k_core(graph, 3)
        for node in graph.nodes():
            if node in members:
                continue
            extended = members | {node}
            assert len(graph.neighbors(node) & extended) < 3 or not _is_core(
                graph, extended, 3
            )

    def test_within_scope(self, paper_graph):
        scoped = k_core(paper_graph, 2, within={1, 2, 3, 4})
        assert scoped == {1, 2, 3, 4}

    def test_invalid_sign_selector(self, paper_graph):
        with pytest.raises(ParameterError):
            k_core(paper_graph, 1, sign="sideways")

    def test_negative_tau_rejected(self, paper_graph):
        with pytest.raises(ParameterError):
            icore(paper_graph, tau=-1)


def _is_core(graph, members, k):
    return all(len(graph.neighbors(node) & members) >= k for node in members)


class TestICore:
    def test_fixed_node_survives_or_fails(self, paper_graph):
        flag, members = icore(paper_graph, fixed={1}, tau=3, sign="positive")
        assert flag and 1 in members

    def test_fixed_node_peeled_fails_fast(self, paper_graph):
        # v8 has positive degree 1; fixing it at tau=3 must fail.
        flag, members = icore(paper_graph, fixed={8}, tau=3, sign="positive")
        assert not flag and members == set()

    def test_fixed_node_outside_scope_fails(self, paper_graph):
        flag, members = icore(paper_graph, fixed={8}, tau=0, within={1, 2, 3})
        assert not flag

    def test_empty_core_reports_failure(self):
        graph = SignedGraph([(1, 2, "+")])
        flag, members = icore(graph, tau=5)
        assert not flag and members == set()

    def test_tau_zero_keeps_everything(self, paper_graph):
        flag, members = icore(paper_graph, tau=0)
        assert flag and members == paper_graph.node_set()

    def test_has_k_core(self, paper_graph):
        assert has_k_core(paper_graph, 3, sign="positive")
        assert not has_k_core(paper_graph, 5, sign="positive")


class TestICoreTracked:
    def test_matches_icore_on_random_graphs(self):
        rng = random.Random(8)
        for _ in range(40):
            graph = make_random_signed_graph(rng)
            tau = rng.randint(0, 4)
            flag_a, members_a = icore(graph, tau=tau, sign="positive")
            flag_b, members_b, degrees = icore_tracked(
                graph, set(), tau, graph.node_set(), None, sign="positive"
            )
            assert flag_a == flag_b
            if flag_a:
                assert members_a == members_b
                # Returned degrees must be exact within-core degrees.
                for node in members_b:
                    assert degrees[node] == len(
                        graph.positive_neighbors(node) & members_b
                    )

    def test_reuses_supplied_degrees(self, paper_graph):
        members = paper_graph.node_set()
        degrees = {
            node: len(paper_graph.positive_neighbors(node) & members) for node in members
        }
        flag, survivors, final = icore_tracked(paper_graph, set(), 3, members, degrees)
        assert flag and survivors == {1, 2, 3, 4, 5, 6, 7}
        assert all(final[node] >= 3 for node in survivors)

    def test_fixed_node_failure(self, paper_graph):
        flag, _members, _degrees = icore_tracked(
            paper_graph, {8}, 3, paper_graph.node_set(), None
        )
        assert not flag
