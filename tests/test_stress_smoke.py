"""Smoke test for the committed stress harness (tools/stress.py)."""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load_stress():
    spec = importlib.util.spec_from_file_location("stress", ROOT / "tools" / "stress.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestStressHarness:
    def test_short_run_is_clean(self, capsys):
        stress = _load_stress()
        assert stress.main(["--trials", "10", "--seed", "11"]) == 0
        assert "all 10 trials clean" in capsys.readouterr().out
