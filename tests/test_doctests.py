"""Run every docstring example in the library as a test.

Keeps the documentation honest: any ``>>>`` example that drifts from
the implementation fails here.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_module_names():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


MODULES = sorted(set(_iter_module_names()))


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
