"""Unit tests for networkx / numpy interoperability."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import ParseError
from repro.graphs import NEGATIVE, POSITIVE, SignedGraph
from repro.io import (
    from_adjacency_matrix,
    from_networkx,
    to_adjacency_matrix,
    to_networkx,
)


class TestNetworkxRoundTrip:
    def test_round_trip(self, paper_graph):
        nx_graph = to_networkx(paper_graph)
        assert nx_graph.number_of_edges() == 17
        assert nx_graph.edges[2, 3]["sign"] == NEGATIVE
        back = from_networkx(nx_graph)
        assert back == paper_graph

    def test_custom_attribute(self, paper_graph):
        nx_graph = to_networkx(paper_graph, sign_attribute="polarity")
        back = from_networkx(nx_graph, sign_attribute="polarity")
        assert back == paper_graph

    def test_weight_fallback(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(1, 2, weight=2.5)
        nx_graph.add_edge(2, 3, weight=-0.5)
        graph = from_networkx(nx_graph)
        assert graph.sign(1, 2) == POSITIVE
        assert graph.sign(2, 3) == NEGATIVE

    def test_default_sign(self):
        nx_graph = nx.Graph([(1, 2)])
        graph = from_networkx(nx_graph, default_sign="+")
        assert graph.sign(1, 2) == POSITIVE

    def test_missing_sign_rejected(self):
        nx_graph = nx.Graph([(1, 2)])
        with pytest.raises(ParseError):
            from_networkx(nx_graph)

    def test_zero_weight_rejected(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(1, 2, weight=0)
        with pytest.raises(ParseError):
            from_networkx(nx_graph)

    def test_self_loops_skipped(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(1, 1, sign=1)
        nx_graph.add_edge(1, 2, sign=1)
        graph = from_networkx(nx_graph)
        assert graph.number_of_edges() == 1

    def test_isolated_nodes_kept(self):
        nx_graph = nx.Graph()
        nx_graph.add_node("solo")
        assert from_networkx(nx_graph).has_node("solo")


class TestAdjacencyMatrix:
    def test_round_trip(self, paper_graph):
        matrix, order = to_adjacency_matrix(paper_graph)
        assert matrix.shape == (8, 8)
        assert (matrix == matrix.T).all()
        assert matrix.trace() == 0
        back = from_adjacency_matrix(matrix, nodes=order)
        assert back == paper_graph

    def test_signs_encoded(self):
        graph = SignedGraph([(0, 1, "+"), (1, 2, "-")])
        matrix, order = to_adjacency_matrix(graph, order=[0, 1, 2])
        assert matrix[0, 1] == 1 and matrix[1, 2] == -1 and matrix[0, 2] == 0

    def test_default_labels(self):
        matrix = np.array([[0, 1], [1, 0]])
        graph = from_adjacency_matrix(matrix)
        assert graph.has_edge(0, 1)

    def test_float_matrix_signs(self):
        matrix = np.array([[0.0, -2.5], [-2.5, 0.0]])
        graph = from_adjacency_matrix(matrix)
        assert graph.sign(0, 1) == NEGATIVE

    def test_non_square_rejected(self):
        with pytest.raises(ParseError):
            from_adjacency_matrix(np.zeros((2, 3)))

    def test_asymmetric_rejected(self):
        matrix = np.array([[0, 1], [-1, 0]])
        with pytest.raises(ParseError):
            from_adjacency_matrix(matrix)

    def test_label_count_mismatch(self):
        with pytest.raises(ParseError):
            from_adjacency_matrix(np.zeros((2, 2)), nodes=["only-one"])
