"""Unit tests for graph statistics (Table-I quantities and friends)."""

import pytest

from repro.graphs import (
    SignedGraph,
    arboricity_upper_bound,
    degeneracy,
    degree_histogram,
    estimated_bytes,
    graph_stats,
    positive_degree_sequence,
    sign_assortativity,
)


class TestGraphStats:
    def test_paper_example_counts(self, paper_graph):
        stats = graph_stats(paper_graph)
        assert stats.nodes == 8
        assert stats.edges == 17
        assert stats.positive_edges == 15
        assert stats.negative_edges == 2
        assert stats.negative_fraction == pytest.approx(2 / 17)
        assert stats.max_negative_degree == 1

    def test_k_max_matches_core_number(self, paper_graph):
        stats = graph_stats(paper_graph)
        # {v1..v5} is a 5-clique (sign-blind), so k_max = 4.
        assert stats.k_max == 4

    def test_empty_graph(self):
        stats = graph_stats(SignedGraph())
        assert stats.nodes == 0
        assert stats.k_max == 0
        assert stats.negative_fraction == 0.0

    def test_table_row_rendering(self, paper_graph):
        row = graph_stats(paper_graph).as_table_row("toy")
        assert "toy" in row and "17" in row


class TestDegeneracyAndArboricity:
    def test_clique_degeneracy(self):
        clique = SignedGraph(
            [(u, v, "+") for u in range(5) for v in range(u + 1, 5)]
        )
        assert degeneracy(clique) == 4

    def test_arboricity_bound_at_most_degeneracy(self, paper_graph):
        assert arboricity_upper_bound(paper_graph) <= degeneracy(paper_graph)

    def test_arboricity_bound_empty(self):
        assert arboricity_upper_bound(SignedGraph()) == 0


class TestDegreeSummaries:
    def test_degree_histogram_sums_to_n(self, paper_graph):
        histogram = degree_histogram(paper_graph)
        assert sum(histogram.values()) == 8

    def test_positive_degree_sequence_sorted(self, paper_graph):
        sequence = positive_degree_sequence(paper_graph)
        assert sequence == sorted(sequence, reverse=True)
        assert sum(sequence) == 2 * paper_graph.number_of_positive_edges()

    def test_estimated_bytes_scales_with_size(self):
        small = SignedGraph([(1, 2, "+")])
        large = SignedGraph([(u, u + 1, "+") for u in range(100)])
        assert estimated_bytes(large) > estimated_bytes(small) > 0


class TestSignAssortativity:
    def test_balanced_triangle(self):
        graph = SignedGraph([(1, 2, "+"), (2, 3, "-"), (1, 3, "-")])
        assert sign_assortativity(graph) == 1.0

    def test_unbalanced_triangle(self):
        graph = SignedGraph([(1, 2, "+"), (2, 3, "+"), (1, 3, "-")])
        assert sign_assortativity(graph) == 0.0

    def test_triangle_free_graph_reports_one(self):
        graph = SignedGraph([(1, 2, "+"), (2, 3, "-")])
        assert sign_assortativity(graph) == 1.0
