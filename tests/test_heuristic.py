"""Tests for the greedy heuristic signed clique search."""

import random
import time

from repro.core import MSCE, AlphaK
from repro.core.cliques import is_alpha_k_clique
from repro.core.heuristic import greedy_signed_cliques
from repro.core.maxtest import is_maximal
from repro.graphs import SignedGraph
from tests.conftest import make_random_signed_graph


class TestGreedySignedCliques:
    def test_paper_example(self, paper_graph):
        cliques = greedy_signed_cliques(paper_graph, 3, 1)
        assert [sorted(c.nodes) for c in cliques] == [[1, 2, 3, 4, 5]]

    def test_subset_of_exact_answer(self):
        rng = random.Random(151)
        for _ in range(40):
            graph = make_random_signed_graph(rng)
            alpha = rng.choice([0, 1, 1.5, 2])
            k = rng.choice([0, 1, 2])
            exact = {c.nodes for c in MSCE(graph, AlphaK(alpha, k)).enumerate_all().cliques}
            greedy = {c.nodes for c in greedy_signed_cliques(graph, alpha, k)}
            assert greedy <= exact

    def test_results_are_valid(self):
        rng = random.Random(152)
        graph = make_random_signed_graph(rng, n_range=(10, 14))
        for clique in greedy_signed_cliques(graph, 1.5, 1):
            clique.verify(graph)

    def test_finds_something_when_exact_does(self):
        rng = random.Random(153)
        hits = total = 0
        for _ in range(30):
            graph = make_random_signed_graph(rng)
            exact = MSCE(graph, AlphaK(1, 1)).enumerate_all().cliques
            if not exact:
                continue
            total += 1
            if greedy_signed_cliques(graph, 1, 1):
                hits += 1
        assert total > 0 and hits == total  # one clique per non-empty instance

    def test_seed_and_cap_controls(self, paper_graph):
        all_seeds = greedy_signed_cliques(paper_graph, 3, 0)
        capped = greedy_signed_cliques(paper_graph, 3, 0, max_seeds=1)
        assert len(capped) <= len(all_seeds)
        seeded = greedy_signed_cliques(paper_graph, 3, 0, seeds=[6])
        assert all(6 in c.nodes or c for c in seeded)

    def test_empty_mccore_returns_empty(self, paper_graph):
        assert greedy_signed_cliques(paper_graph, 10, 1) == []

    def test_uncertified_mode_runs(self, paper_graph):
        cliques = greedy_signed_cliques(paper_graph, 3, 1, certify=False)
        assert [sorted(c.nodes) for c in cliques] == [[1, 2, 3, 4, 5]]

    def test_deterministic(self):
        rng = random.Random(154)
        graph = make_random_signed_graph(rng, n_range=(10, 14))
        first = [c.nodes for c in greedy_signed_cliques(graph, 1.5, 1)]
        second = [c.nodes for c in greedy_signed_cliques(graph, 1.5, 1)]
        assert first == second

    def test_deadline_stops_seeding(self):
        rng = random.Random(155)
        graph = make_random_signed_graph(rng, n_range=(12, 14))
        # A deadline already in the past: no seed may start growing.
        assert greedy_signed_cliques(graph, 1, 0, deadline=time.perf_counter() - 1) == []


class TestTwoNodeLiftRegression:
    """The certify pass must catch *multi-node* lifts under ``within=``.

    For unrestricted growth the discard is dead code: a stalled grow
    means no viable single extension exists, and single-extension
    stalling plus the constraint's monotonicity imply maximality. A
    ``within=`` region changes that — the grower can stall against the
    region boundary while a lift of two *outside* nodes still extends
    the clique, so ``certify=True`` becomes load-bearing.

    Instance (alpha=1.5, k=2, positive threshold ceil(3) = 3):
    K4 = {1,2,3,4} all-positive; node 5 has +1, +2, -3, -4; node 6 has
    +3, +4, -1, -2; edge (5, 6) is positive. K4 is a valid
    (1.5, 2)-clique, K4 + {5} and K4 + {6} are invalid (only two
    positive neighbours each), but K4 + {5, 6} is valid — so K4 is
    *not* maximal even though no single node extends it.
    """

    ALPHA, K = 1.5, 2
    K4 = frozenset({1, 2, 3, 4})

    def _graph(self) -> SignedGraph:
        edges = [(u, v, "+") for u in (1, 2, 3, 4) for v in (1, 2, 3, 4) if u < v]
        edges += [(5, 1, "+"), (5, 2, "+"), (5, 3, "-"), (5, 4, "-")]
        edges += [(6, 3, "+"), (6, 4, "+"), (6, 1, "-"), (6, 2, "-")]
        edges += [(5, 6, "+")]
        return SignedGraph(edges)

    def test_instance_shape(self):
        graph = self._graph()
        params = AlphaK(self.ALPHA, self.K)
        assert is_alpha_k_clique(graph, self.K4, params)
        # No single node lifts K4...
        for extra in (5, 6):
            assert not is_alpha_k_clique(graph, self.K4 | {extra}, params)
        # ...but the two-node lift does, so K4 is not maximal.
        assert is_alpha_k_clique(graph, self.K4 | {5, 6}, params)
        assert not is_maximal(graph, set(self.K4), params)

    def test_certify_discards_the_stalled_grow(self):
        graph = self._graph()
        certified = greedy_signed_cliques(
            graph, self.ALPHA, self.K, within=self.K4, certify=True
        )
        assert self.K4 not in {c.nodes for c in certified}

    def test_uncertified_mislabels_it(self):
        # Without certification the stalled grow is reported as maximal
        # — the mislabel the certify pass exists to prevent.
        graph = self._graph()
        uncertified = greedy_signed_cliques(
            graph, self.ALPHA, self.K, within=self.K4, certify=False
        )
        assert self.K4 in {c.nodes for c in uncertified}

    def test_unrestricted_growth_recovers_the_lift(self):
        graph = self._graph()
        cliques = greedy_signed_cliques(graph, self.ALPHA, self.K, certify=True)
        assert self.K4 | {5, 6} in {c.nodes for c in cliques}
