"""Tests for the greedy heuristic signed clique search."""

import random

from repro.core import MSCE, AlphaK
from repro.core.heuristic import greedy_signed_cliques
from tests.conftest import make_random_signed_graph


class TestGreedySignedCliques:
    def test_paper_example(self, paper_graph):
        cliques = greedy_signed_cliques(paper_graph, 3, 1)
        assert [sorted(c.nodes) for c in cliques] == [[1, 2, 3, 4, 5]]

    def test_subset_of_exact_answer(self):
        rng = random.Random(151)
        for _ in range(40):
            graph = make_random_signed_graph(rng)
            alpha = rng.choice([0, 1, 1.5, 2])
            k = rng.choice([0, 1, 2])
            exact = {c.nodes for c in MSCE(graph, AlphaK(alpha, k)).enumerate_all().cliques}
            greedy = {c.nodes for c in greedy_signed_cliques(graph, alpha, k)}
            assert greedy <= exact

    def test_results_are_valid(self):
        rng = random.Random(152)
        graph = make_random_signed_graph(rng, n_range=(10, 14))
        for clique in greedy_signed_cliques(graph, 1.5, 1):
            clique.verify(graph)

    def test_finds_something_when_exact_does(self):
        rng = random.Random(153)
        hits = total = 0
        for _ in range(30):
            graph = make_random_signed_graph(rng)
            exact = MSCE(graph, AlphaK(1, 1)).enumerate_all().cliques
            if not exact:
                continue
            total += 1
            if greedy_signed_cliques(graph, 1, 1):
                hits += 1
        assert total > 0 and hits == total  # one clique per non-empty instance

    def test_seed_and_cap_controls(self, paper_graph):
        all_seeds = greedy_signed_cliques(paper_graph, 3, 0)
        capped = greedy_signed_cliques(paper_graph, 3, 0, max_seeds=1)
        assert len(capped) <= len(all_seeds)
        seeded = greedy_signed_cliques(paper_graph, 3, 0, seeds=[6])
        assert all(6 in c.nodes or c for c in seeded)

    def test_empty_mccore_returns_empty(self, paper_graph):
        assert greedy_signed_cliques(paper_graph, 10, 1) == []

    def test_uncertified_mode_runs(self, paper_graph):
        cliques = greedy_signed_cliques(paper_graph, 3, 1, certify=False)
        assert [sorted(c.nodes) for c in cliques] == [[1, 2, 3, 4, 5]]

    def test_deterministic(self):
        rng = random.Random(154)
        graph = make_random_signed_graph(rng, n_range=(10, 14))
        first = [c.nodes for c in greedy_signed_cliques(graph, 1.5, 1)]
        second = [c.nodes for c in greedy_signed_cliques(graph, 1.5, 1)]
        assert first == second
