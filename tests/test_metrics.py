"""Unit tests for signed conductance, precision, and community stats."""

import pytest

from repro.graphs import SignedGraph
from repro.metrics import (
    average_f1,
    average_precision,
    average_signed_conductance,
    best_match,
    community_stats,
    conductance_breakdown,
    describe_community,
    signed_conductance,
)


def _two_camp_graph() -> SignedGraph:
    """Two positive triangles joined by negative edges — the ideal
    signed-community structure: phi of one triangle should be -1."""
    edges = [
        (1, 2, "+"), (2, 3, "+"), (1, 3, "+"),
        (4, 5, "+"), (5, 6, "+"), (4, 6, "+"),
        (1, 4, "-"), (2, 5, "-"),
    ]
    return SignedGraph(edges)


class TestSignedConductance:
    def test_ideal_community_scores_minus_one(self):
        graph = _two_camp_graph()
        assert signed_conductance(graph, {1, 2, 3}) == pytest.approx(-1.0)

    def test_breakdown_terms(self):
        graph = _two_camp_graph()
        breakdown = conductance_breakdown(graph, {1, 2, 3})
        assert breakdown.positive_term == pytest.approx(0.0)
        assert breakdown.negative_term == pytest.approx(1.0)
        assert breakdown.signed == pytest.approx(-1.0)

    def test_worst_community_scores_plus_one(self):
        # Flip the structure: a "community" of strangers connected only
        # outward by positive edges, holding all internal negatives.
        edges = [
            (1, 2, "-"), (2, 3, "-"), (1, 3, "-"),
            (1, 4, "+"), (2, 5, "+"),
            (4, 5, "+"),
        ]
        graph = SignedGraph(edges)
        assert signed_conductance(graph, {1, 2, 3}) == pytest.approx(1.0)

    def test_manual_mixed_case(self):
        # S = {1,2}: positive cut 1 (edge 2-3), positive volume inside 3
        # (1-2 twice + 2-3), outside 1; negative cut 1 (1-4), volumes 1/1.
        graph = SignedGraph([(1, 2, "+"), (2, 3, "+"), (1, 4, "-")])
        breakdown = conductance_breakdown(graph, {1, 2})
        assert breakdown.positive_term == pytest.approx(1.0)  # 1 / min(3, 1)
        assert breakdown.negative_term == pytest.approx(1.0)  # 1 / min(1, 1)
        assert breakdown.signed == pytest.approx(0.0)

    def test_value_range(self):
        graph = _two_camp_graph()
        for members in ({1}, {1, 2}, {1, 4}, {1, 2, 3, 4}):
            assert -1.0 <= signed_conductance(graph, members) <= 1.0

    def test_degenerate_denominators_score_zero(self):
        all_positive = SignedGraph([(1, 2, "+"), (2, 3, "+")])
        assert signed_conductance(all_positive, {1, 2}) >= 0.0
        empty_side = SignedGraph([(1, 2, "+")])
        assert signed_conductance(empty_side, {1, 2}) == 0.0

    def test_unknown_members_ignored(self):
        graph = _two_camp_graph()
        assert signed_conductance(graph, {1, 2, 3, 99}) == signed_conductance(
            graph, {1, 2, 3}
        )

    def test_average(self):
        graph = _two_camp_graph()
        average = average_signed_conductance(graph, [{1, 2, 3}, {4, 5, 6}])
        assert average == pytest.approx(-1.0)
        assert average_signed_conductance(graph, []) == 0.0


class TestPrecision:
    TRUTH = [{1, 2, 3, 4}, {5, 6, 7}]

    def test_perfect_match(self):
        score = best_match({1, 2, 3, 4}, self.TRUTH)
        assert score.precision == 1.0 and score.recall == 1.0 and score.f1 == 1.0

    def test_partial_match_picks_best_complex(self):
        score = best_match({3, 4, 5}, self.TRUTH)
        # Best overlap is 2 (with the first complex).
        assert score.precision == pytest.approx(2 / 3)
        assert score.recall == pytest.approx(2 / 4)

    def test_disjoint_prediction(self):
        score = best_match({8, 9}, self.TRUTH)
        assert score.precision == 0.0 and score.f1 == 0.0

    def test_empty_inputs(self):
        assert best_match(set(), self.TRUTH).precision == 0.0
        assert best_match({1}, []).precision == 0.0

    def test_average_precision(self):
        value = average_precision([{1, 2}, {5, 8}], self.TRUTH)
        assert value == pytest.approx((1.0 + 0.5) / 2)
        assert average_precision([], self.TRUTH) == 0.0

    def test_average_f1(self):
        assert 0.0 <= average_f1([{1, 2}, {8, 9}], self.TRUTH) <= 1.0
        assert average_f1([], self.TRUTH) == 0.0


class TestCommunityStats:
    def test_paper_clique_profile(self, paper_graph):
        stats = community_stats(paper_graph, {1, 2, 3, 4, 5})
        assert stats.size == 5
        assert stats.internal_positive == 9
        assert stats.internal_negative == 1
        assert stats.density == pytest.approx(1.0)
        assert stats.internal_negative_fraction == pytest.approx(0.1)
        assert stats.boundary_positive == 4  # 2-7, 5-7, 5-6, 3-6
        assert stats.boundary_negative == 0

    def test_boundary_negative_fraction(self, paper_graph):
        # Boundary of {6,7}: 6-8(+), 6-3(+), 6-5(+), 7-8(-), 7-2(+), 7-5(+).
        stats = community_stats(paper_graph, {6, 7})
        assert stats.boundary_negative == 1
        assert stats.boundary_positive == 5
        assert stats.boundary_negative_fraction == pytest.approx(1 / 6)

    def test_unknown_members_ignored(self, paper_graph):
        assert community_stats(paper_graph, {1, 99}).size == 1

    def test_describe(self, paper_graph):
        text = describe_community(paper_graph, {1, 2, 3, 4, 5}, name="camp")
        assert "camp" in text and "5 nodes" in text
