"""Tests for signed clique percolation."""

import pytest

from repro.core import MSCE, AlphaK
from repro.core.percolation import merge_overlapping_cliques, signed_clique_percolation
from repro.core.cliques import SignedClique
from repro.exceptions import ParameterError
from repro.generators import lfr_like_signed
from repro.graphs import SignedGraph


def _clique(graph, nodes):
    return SignedClique.from_nodes(graph, nodes, AlphaK(1, 1))


class TestMergeOverlappingCliques:
    def test_chained_overlap_merges_transitively(self, paper_graph):
        cliques = [
            _clique(paper_graph, {1, 2, 4}),
            _clique(paper_graph, {2, 4, 5}),
            _clique(paper_graph, {4, 5, 7}),
            _clique(paper_graph, {6, 8}),
        ]
        communities = merge_overlapping_cliques(cliques, overlap=2)
        assert communities[0] == {1, 2, 4, 5, 7}
        assert {6, 8} in communities

    def test_overlap_threshold(self, paper_graph):
        cliques = [
            _clique(paper_graph, {1, 2, 4}),
            _clique(paper_graph, {4, 5, 7}),  # shares only node 4
        ]
        assert len(merge_overlapping_cliques(cliques, overlap=2)) == 2
        assert len(merge_overlapping_cliques(cliques, overlap=1)) == 1

    def test_empty_input(self):
        assert merge_overlapping_cliques([], overlap=2) == []

    def test_invalid_overlap(self, paper_graph):
        with pytest.raises(ParameterError):
            merge_overlapping_cliques([_clique(paper_graph, {1, 2})], overlap=0)

    def test_sorted_largest_first(self, paper_graph):
        cliques = [
            _clique(paper_graph, {6, 8}),
            _clique(paper_graph, {1, 2, 4}),
            _clique(paper_graph, {1, 2, 5}),
        ]
        communities = merge_overlapping_cliques(cliques, overlap=2)
        sizes = [len(c) for c in communities]
        assert sizes == sorted(sizes, reverse=True)


class TestSignedCliquePercolation:
    def test_two_camp_graph(self):
        edges = [
            (1, 2, "+"), (2, 3, "+"), (1, 3, "+"), (3, 4, "+"), (1, 4, "+"), (2, 4, "+"),
            (5, 6, "+"), (6, 7, "+"), (5, 7, "+"),
            (4, 5, "-"),
        ]
        graph = SignedGraph(edges)
        communities = signed_clique_percolation(graph, alpha=2, k=0, overlap=2)
        assert {1, 2, 3, 4} in communities
        assert {5, 6, 7} in communities

    def test_communities_are_clique_unions(self, paper_graph):
        communities = signed_clique_percolation(paper_graph, alpha=3, k=0, overlap=2)
        cliques = MSCE(paper_graph, AlphaK(3, 0)).enumerate_all().cliques
        clique_union = set().union(*(c.nodes for c in cliques))
        for community in communities:
            assert community <= clique_union

    def test_recovers_planted_lfr_communities(self):
        graph, truth = lfr_like_signed(
            n=150, mu=0.05, internal_noise=0.0, external_noise=0.0,
            community_size_range=(12, 30), seed=9,
        )
        communities = signed_clique_percolation(graph, alpha=2, k=1, overlap=3)
        # The biggest detected community must align well with one
        # planted community.
        from repro.metrics import best_match

        top = communities[0]
        assert best_match(top, [set(c) for c in truth]).precision > 0.8
