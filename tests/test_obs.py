"""Tests for the observability subsystem (``repro.obs``).

Three layers of guarantees:

1. **Determinism** — with a :class:`FakeClock` every span duration,
   progress event and ETA is exactly reproducible; histograms are exact
   regardless of observation order.
2. **Schema stability** — the JSON trace shape of a sequential MSCE run
   is pinned against a committed golden file
   (``tests/golden/trace_shape.json``); renamed or reparented phases are
   schema drift and must fail CI. Regenerate with
   ``PYTHONPATH=src:. python tests/test_obs.py --regen-golden``.
3. **Crash bit-identity** (the PR's acceptance test) — a 4-worker
   parallel run with an injected worker kill produces aggregated trace
   counters bit-identical to the uninstrumented sequential
   ``SearchStats``, a journal recording the kill / retry / respawn, and
   a valid Prometheus text export.
"""

import json
import re
from pathlib import Path

import pytest

from repro.core import MSCE, AlphaK, enumerate_parallel
from repro.core.bbe import SearchStats
from repro.graphs import SignedGraph
from repro.obs import runtime
from repro.obs.clock import FakeClock, MonotonicClock
from repro.obs.export import prometheus_text, trace_shape, trace_to_dict
from repro.obs.journal import NULL_JOURNAL, EventJournal
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.progress import ProgressEvent, ProgressReporter
from repro.obs.runtime import Observer, observing
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.testing import FaultPlan, injected
from tests.test_fault_tolerance import SPLIT_KNOBS, _fault_graph, _fingerprint

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_TRACE = GOLDEN_DIR / "trace_shape.json"

#: The acceptance test's worker pool (the issue pins a 4-worker run).
ACCEPTANCE_WORKERS = 4


def _small_graph() -> SignedGraph:
    """The fixed graph behind the golden trace (one component, one clique)."""
    return SignedGraph(
        [(1, 2, "+"), (1, 3, "+"), (2, 3, "+"), (3, 4, "+"), (2, 4, "+"), (1, 4, "-")]
    )


# ---------------------------------------------------------------------------
# Clocks
# ---------------------------------------------------------------------------
class TestClocks:
    def test_fake_clock_advances_exactly(self):
        clock = FakeClock(start=10.0)
        assert clock.now() == 10.0
        clock.advance(2.5)
        assert clock.now() == 12.5

    def test_fake_clock_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)

    def test_monotonic_clock_is_monotonic(self):
        clock = MonotonicClock()
        assert clock.now() <= clock.now()


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(3.0)
        registry.gauge("g").add(-1.0)
        registry.histogram("h", bounds=(1, 10)).observe(0.5)
        assert registry.counter_value("c") == 5
        assert registry.gauges["g"].value == 2.0
        assert registry.histograms["h"].counts == [1, 0, 0]

    def test_histogram_exact_and_order_independent(self):
        values = [0.5, 5, 50, 1, 10]
        forward = MetricsRegistry().histogram("h", bounds=(1, 10))
        backward = MetricsRegistry().histogram("h", bounds=(1, 10))
        for v in values:
            forward.observe(v)
        for v in reversed(values):
            backward.observe(v)
        assert forward.counts == backward.counts == [2, 2, 1]
        assert forward.total == backward.total == sum(values)
        assert forward.count == backward.count == len(values)

    def test_snapshot_merge_is_commutative(self):
        a = MetricsRegistry()
        a.counter("n").inc(3)
        a.gauge("peak").set(7)
        a.histogram("h", bounds=(1,)).observe(0.5)
        b = MetricsRegistry()
        b.counter("n").inc(4)
        b.gauge("peak").set(5)
        b.histogram("h", bounds=(1,)).observe(2.0)

        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge_snapshot(a.snapshot())
        ab.merge_snapshot(b.snapshot())
        ba.merge_snapshot(b.snapshot())
        ba.merge_snapshot(a.snapshot())
        assert ab.snapshot() == ba.snapshot()
        assert ab.counter_value("n") == 7
        assert ab.gauges["peak"].value == 7  # gauges merge by max
        assert ab.histograms["h"].counts == [1, 1]

    def test_merge_none_is_noop_and_bounds_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.merge_snapshot(None)
        assert registry.snapshot()["counters"] == {}
        registry.histogram("h", bounds=(1, 2))
        bad = {"histograms": {"h": {"bounds": [5], "counts": [0, 0], "sum": 0, "count": 0}}}
        with pytest.raises(ValueError, match="bounds mismatch"):
            registry.merge_snapshot(bad)

    def test_counter_inc_is_atomic_across_threads(self):
        """`inc` is reachable concurrently from the serving layer's
        executor threads (several tenant engines mirror into the same
        ambient counter); a torn read-modify-write would lose counts."""
        import sys
        import threading

        counter = MetricsRegistry().counter("hammered")
        threads, per_thread = 4, 10_000
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # force frequent preemption
        try:
            def worker():
                for _ in range(per_thread):
                    counter.inc()

            pool = [threading.Thread(target=worker) for _ in range(threads)]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
        finally:
            sys.setswitchinterval(old_interval)
        assert counter.value == threads * per_thread

    def test_null_registry_discards_everything(self):
        NULL_REGISTRY.counter("x").inc(100)
        NULL_REGISTRY.gauge("y").set(1)
        NULL_REGISTRY.histogram("z").observe(1)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


# ---------------------------------------------------------------------------
# Tracing (fake-clock determinism)
# ---------------------------------------------------------------------------
class TestTracing:
    def test_span_durations_and_counter_deltas_are_exact(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        tracer = Tracer(registry, clock=clock)
        with tracer.span("outer", dataset="toy"):
            clock.advance(2.0)
            with tracer.span("inner"):
                clock.advance(0.5)
                registry.counter("work").inc(3)
            clock.advance(1.0)
        (root,) = tracer.roots
        assert root.seconds == 3.5
        assert root.attrs == {"dataset": "toy"}
        (inner,) = root.children
        assert inner.seconds == 0.5
        assert inner.counters == {"work": 3}
        assert root.counters == {"work": 3}

    def test_zero_deltas_are_omitted(self):
        registry = MetricsRegistry()
        registry.counter("idle")
        tracer = Tracer(registry, clock=FakeClock())
        with tracer.span("phase"):
            pass
        assert tracer.roots[0].counters == {}

    def test_exception_closes_dangling_children(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                tracer.span("leaked").__enter__()  # never exited explicitly
                clock.advance(1.0)
                raise RuntimeError("boom")
        root = tracer.roots[0]
        assert root.ended is not None
        assert root.children[0].ended is not None
        assert tracer._stack == []

    def test_root_cap_counts_drops(self):
        tracer = Tracer(clock=FakeClock(), max_roots=2)
        for index in range(4):
            with tracer.span(f"run{index}"):
                pass
        assert len(tracer.roots) == 2
        assert tracer.dropped_roots == 2
        assert trace_to_dict(tracer)["dropped_roots"] == 2

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("anything", attr=1):
            pass
        assert NULL_TRACER.roots == []


# ---------------------------------------------------------------------------
# Progress (fake-clock ETA determinism)
# ---------------------------------------------------------------------------
class TestProgress:
    def test_eta_is_exact_under_fake_clock(self):
        clock = FakeClock()
        events = []
        reporter = ProgressReporter(events.append, clock=clock, min_interval=1.0)

        assert reporter.update(0, 10)  # first sample always fires
        assert events[-1] == ProgressEvent(
            completed=0, outstanding=10, elapsed_seconds=0.0, rate=0.0, eta_seconds=None
        )
        clock.advance(0.5)
        assert not reporter.update(1, 9)  # throttled: 0.5s < min_interval
        clock.advance(0.5)
        assert reporter.update(2, 8)
        assert events[-1] == ProgressEvent(
            completed=2, outstanding=8, elapsed_seconds=1.0, rate=2.0, eta_seconds=4.0
        )
        reporter.finish(10)
        assert events[-1].completed == 10
        assert events[-1].outstanding == 0
        assert reporter.emitted == 3

    def test_finish_bypasses_throttle(self):
        clock = FakeClock()
        events = []
        reporter = ProgressReporter(events.append, clock=clock, min_interval=100.0)
        reporter.update(0, 5)
        reporter.finish(5)
        assert [event.completed for event in events] == [0, 5]


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------
class TestJournal:
    def test_emit_of_kind_and_memory_cap(self):
        journal = EventJournal(clock=FakeClock(start=1.0), max_events=2)
        journal.emit("a", x=1)
        journal.emit("b")
        journal.emit("a", x=2)  # over the cap: dropped from memory
        assert journal.dropped == 1
        assert journal.of_kind("a") == [{"ts": 1.0, "event": "a", "x": 1}]

    def test_jsonl_file_is_valid_line_per_event(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = EventJournal(path=str(path), clock=FakeClock())
        journal.emit("guard_trip", reason="deadline")
        journal.emit("worker_lost", slot=0)
        journal.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in records] == ["guard_trip", "worker_lost"]
        assert all("ts" in r for r in records)

    def test_null_journal_discards(self):
        assert NULL_JOURNAL.emit("anything", x=1) == {}
        assert NULL_JOURNAL.events == []


# ---------------------------------------------------------------------------
# Ambient runtime
# ---------------------------------------------------------------------------
class TestRuntime:
    def test_default_observer_is_disabled(self):
        previous = runtime.install(Observer.disabled())
        try:
            assert not runtime.get_observer().enabled
            with runtime.span("anything"):
                pass  # must be a no-op, not an error
            runtime.journal_event("anything")
        finally:
            runtime.install(previous)

    def test_env_flag_builds_enabled_observer(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        assert runtime._from_env().enabled
        monkeypatch.setenv("REPRO_OBS", "0")
        assert not runtime._from_env().enabled

    def test_observing_installs_and_restores(self):
        before = runtime.get_observer()
        with observing() as observer:
            assert runtime.get_observer() is observer
            assert observer.enabled
            with runtime.span("phase"):
                runtime.counter("n").inc()
        assert runtime.get_observer() is before
        # The observer stays readable after the block.
        assert observer.registry.counter_value("n") == 1
        assert [span.name for span in observer.tracer.roots] == ["phase"]


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
#: One Prometheus 0.0.4 sample line: name, optional {labels}, value.
_PROM_SAMPLE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*(\{le="[^"]+"\})? [0-9.eE+-]+(inf)?$'
)


def _assert_valid_prometheus(text: str) -> None:
    assert text.endswith("\n")
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            assert line.split()[-1] in ("counter", "gauge", "histogram")
        else:
            assert _PROM_SAMPLE.match(line), f"bad exposition line: {line!r}"


class TestExport:
    def test_prometheus_text_is_valid_and_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("msce_recursions").inc(7)
        registry.gauge("pool-size").set(4)  # dash must be sanitised
        histogram = registry.histogram("task_seconds", bounds=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(5.0)
        text = prometheus_text(registry)
        _assert_valid_prometheus(text)
        assert text == prometheus_text(registry)  # deterministic
        assert "repro_msce_recursions_total 7" in text
        assert "repro_pool_size 4" in text
        assert 'repro_task_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_task_seconds_count 2" in text

    def test_trace_shape_collapses_values_keeps_names(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        tracer = Tracer(registry, clock=clock)
        with tracer.span("msce", alpha=2.0):
            registry.counter("msce_recursions").inc()
            clock.advance(1.0)
        shape = trace_shape(trace_to_dict(tracer))
        (span,) = shape["spans"]
        assert span["name"] == "msce"  # names verbatim: renames are drift
        assert span["attrs"] == ["alpha"]  # values collapse to key lists
        assert span["counters"] == ["msce_recursions"]
        assert span["seconds"] == "float"


# ---------------------------------------------------------------------------
# Golden trace schema (the CI drift gate)
# ---------------------------------------------------------------------------
def _sequential_trace_shape():
    """The trace shape of one sequential MSCE run on the fixed graph."""
    with observing(clock=FakeClock()) as observer:
        MSCE(_small_graph(), AlphaK(2, 1)).enumerate_all()
    return trace_shape(trace_to_dict(observer.tracer))


class TestGoldenTraceSchema:
    def test_sequential_trace_shape_matches_golden(self):
        expected = json.loads(GOLDEN_TRACE.read_text(encoding="utf-8"))
        actual = _sequential_trace_shape()
        assert actual == expected, (
            "trace schema drifted from tests/golden/trace_shape.json — "
            "if intentional, regenerate with "
            "`PYTHONPATH=src:. python tests/test_obs.py --regen-golden`"
        )

    def test_shape_is_stable_across_runs(self):
        assert _sequential_trace_shape() == _sequential_trace_shape()


# ---------------------------------------------------------------------------
# End-to-end: instrumented pipeline runs
# ---------------------------------------------------------------------------
class TestPipelineIntegration:
    def test_sequential_run_produces_phase_tree_and_metrics(self):
        with observing() as observer:
            result = MSCE(_small_graph(), AlphaK(2, 1)).enumerate_all()
        (root,) = observer.tracer.roots
        assert root.name == "msce"
        child_names = [child.name for child in root.children]
        assert "enumerate" in child_names
        assert "merge" in child_names
        # The ambient registry aggregates the run's SearchStats exactly.
        for field_name, value in result.stats.as_dict().items():
            assert observer.registry.counter_value("msce_" + field_name) == value
        _assert_valid_prometheus(prometheus_text(observer.registry))

    def test_guard_trip_is_journaled(self):
        graph = _fault_graph(seed=13, components=1)
        with observing() as observer:
            result = MSCE(graph, AlphaK(1.5, 1), max_memory_bytes=1).enumerate_all()
        assert result.interrupted_reason == "memory"
        trips = observer.journal.of_kind("guard_trip")
        assert trips and trips[0]["reason"] == "memory"

    def test_degraded_single_worker_run_is_journaled(self):
        graph = _fault_graph(seed=13)
        with observing() as observer:
            result = enumerate_parallel(graph, 1.5, 1, workers=1, **SPLIT_KNOBS)
        assert result.parallel["degraded"] == "workers<=1"
        (event,) = observer.journal.of_kind("degraded")
        assert event["reason"] == "workers<=1"
        (root,) = observer.tracer.roots
        assert root.name == "msce_parallel"

    def test_parallel_progress_callback_fires(self):
        graph = _fault_graph(seed=19)
        events = []
        result = enumerate_parallel(
            graph, 1.5, 1, workers=2, progress=events.append, **SPLIT_KNOBS
        )
        assert not result.interrupted
        assert events, "progress callback never fired"
        assert all(isinstance(event, ProgressEvent) for event in events)
        completed = [event.completed for event in events]
        assert completed == sorted(completed)
        # finish() forces the terminal sample.
        assert events[-1].completed == result.parallel["tasks_completed"]
        assert events[-1].outstanding == 0


class TestCrashBitIdentity:
    """The PR's acceptance test (see module docstring, point 3)."""

    def test_four_worker_crash_run_matches_uninstrumented_sequential(self, tmp_path):
        graph = _fault_graph(seed=13)
        # Uninstrumented 1-process baseline: the default observer stays
        # disabled, SearchStats counts in its private registry only.
        baseline = MSCE(graph, AlphaK(1.5, 1)).enumerate_all()
        expected = baseline.stats.as_dict()

        journal_path = tmp_path / "journal.jsonl"
        with observing(journal_path=str(journal_path)) as observer:
            with injected(FaultPlan(kill_at_frame={0: 5})):
                result = enumerate_parallel(
                    graph, 1.5, 1, workers=ACCEPTANCE_WORKERS, **SPLIT_KNOBS
                )

        # 1. Results and stats survive the crash bit-identically.
        assert _fingerprint(result) == _fingerprint(baseline)
        assert result.parallel["workers_lost"] >= 1

        # 2. The aggregated registry counters equal the sequential
        #    SearchStats exactly (exactly-once credit under retries).
        for field_name, value in expected.items():
            assert observer.registry.counter_value("msce_" + field_name) == value, (
                f"aggregated msce_{field_name} diverged from sequential"
            )

        # 3. The root span's counter deltas carry the same aggregation
        #    (merge happens before the root span closes).
        trace = trace_to_dict(observer.tracer)
        root = next(s for s in trace["spans"] if s["name"] == "msce_parallel")
        for field_name, value in expected.items():
            assert root["counters"].get("msce_" + field_name, 0) == value

        # 4. Worker extras aggregate without disturbing the stats:
        #    every completed task contributes exactly one worker_tasks
        #    credit and one task_recursions observation.
        tasks = result.parallel["tasks_completed"]
        assert observer.registry.counter_value("worker_tasks") == tasks
        assert observer.registry.histograms["task_recursions"].count == tasks

        # 5. The journal recorded the lifecycle: spawns, the kill, the
        #    retry of the dead worker's frames, and the respawn.
        journal = observer.journal
        assert len(journal.of_kind("worker_spawn")) >= ACCEPTANCE_WORKERS
        assert journal.of_kind("worker_lost")
        assert journal.of_kind("frame_retry")
        assert journal.of_kind("worker_respawn")
        lost = journal.of_kind("worker_lost")[0]
        assert {"slot", "epoch", "in_flight"} <= set(lost)

        # 6. The JSONL stream on disk is valid and carries the same events.
        records = [
            json.loads(line) for line in journal_path.read_text().splitlines()
        ]
        kinds = {record["event"] for record in records}
        assert {"worker_spawn", "worker_lost", "frame_retry", "worker_respawn"} <= kinds

        # 7. The metrics registry renders as valid Prometheus exposition.
        _assert_valid_prometheus(prometheus_text(observer.registry))

    def test_aggregation_is_stable_across_worker_counts(self):
        graph = _fault_graph(seed=17)
        expected = MSCE(graph, AlphaK(1.5, 1)).enumerate_all().stats.as_dict()
        for workers in (2, ACCEPTANCE_WORKERS):
            with observing() as observer:
                enumerate_parallel(graph, 1.5, 1, workers=workers, **SPLIT_KNOBS)
            aggregated = {
                field_name: observer.registry.counter_value("msce_" + field_name)
                for field_name in SearchStats.FIELDS
            }
            assert aggregated == expected, f"divergence at workers={workers}"


if __name__ == "__main__":
    import sys

    if "--regen-golden" in sys.argv:
        GOLDEN_DIR.mkdir(exist_ok=True)
        GOLDEN_TRACE.write_text(
            json.dumps(_sequential_trace_shape(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {GOLDEN_TRACE}")
