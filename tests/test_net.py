"""Chaos and contract tests for the network serving layer (``repro.net``).

The server's promises, each pinned here against a live server driven by
:mod:`repro.testing.chaos`:

* **shed, never melt** — past capacity, requests get an immediate
  structured 503 with ``Retry-After``; the listener stays up;
* **deadlines hold** — no accepted request outlives its budget, and a
  504 is a response, not a hang;
* **coalescing is invisible** — duplicate in-flight requests share one
  computation and every waiter receives the identical answer; a waiter
  that disconnects or times out never cancels the shared flight;
* **failures are request-scoped** — poisoned requests, worker-pool
  collapse and cache-dir corruption produce structured errors or
  degraded-but-correct answers while the server keeps serving;
* **mutations are versioned** — in-flight readers finish against the
  fingerprint they started on.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.core import MSCE, AlphaK
from repro.generators import gnp_signed
from repro.graphs import SignedGraph
from repro.limits import ResourceGuard, parse_deadline
from repro.net import (
    AdmissionController,
    ServerConfig,
    Shed,
    SingleFlight,
)
from repro.net.http import HttpError, Request
from repro.testing import FaultPlan, injected
from repro.testing.chaos import (
    ServerHarness,
    closed_loop,
    half_request,
    http_request,
    slow_loris,
)
from tests.conftest import PAPER_EDGES


@pytest.fixture
def paper_graph():
    return SignedGraph(PAPER_EDGES)


@pytest.fixture
def random_graph():
    return gnp_signed(36, 0.3, negative_fraction=0.25, seed=11)


def _result_core(payload):
    """The deterministic part of a result payload (drops timings)."""
    return {
        key: value
        for key, value in payload.items()
        if key not in ("elapsed_ms", "coalesced")
    }


def _expected_cliques(graph, alpha, k):
    result = MSCE(graph, AlphaK(alpha, k)).enumerate_all()
    return sorted(frozenset(c.nodes) for c in result.cliques)


def _payload_cliques(payload):
    return sorted(frozenset(c["nodes"]) for c in payload["cliques"])


# ---------------------------------------------------------------------------
# Satellite: deadline parsing + guard propagation
# ---------------------------------------------------------------------------
class TestParseDeadline:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("30", 30.0),
            ("2.5s", 2.5),
            ("150ms", 0.15),
            (" 500 ms ", 0.5),
            ("1S", 1.0),
        ],
    )
    def test_accepts_suffixes(self, text, expected):
        assert parse_deadline(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["", "fast", "-1s", "0", "0ms", "inf", "nan", "1h"])
    def test_rejects_bad_durations(self, text):
        with pytest.raises(ValueError):
            parse_deadline(text)

    def test_remaining_time_counts_down(self):
        clock = [100.0]
        guard = ResourceGuard(deadline=103.0, clock=lambda: clock[0])
        assert guard.remaining_time() == pytest.approx(3.0)
        clock[0] = 102.5
        assert guard.remaining_time() == pytest.approx(0.5)
        clock[0] = 110.0
        assert guard.remaining_time() == 0.0  # floored, never negative

    def test_remaining_time_without_deadline(self):
        assert ResourceGuard().remaining_time() is None


# ---------------------------------------------------------------------------
# Unit: single-flight coalescing (cancellation semantics live here)
# ---------------------------------------------------------------------------
class TestSingleFlight:
    def test_duplicates_share_one_computation(self):
        async def scenario():
            flights = SingleFlight()
            computes = []

            async def compute():
                computes.append(1)
                await asyncio.sleep(0.01)
                return "answer"

            a, leader_a = flights.join("key", compute)
            b, leader_b = flights.join("key", compute)
            assert leader_a and not leader_b
            assert a is b
            results = await asyncio.gather(flights.wait(a), flights.wait(b))
            assert results == ["answer", "answer"]
            assert computes == [1]
            assert len(flights) == 0  # unregistered on completion
            assert flights.stats() == {"in_flight": 0, "started": 1, "coalesced": 1}

        asyncio.run(scenario())

    def test_waiter_cancellation_does_not_cancel_the_flight(self):
        """The satellite regression test: a waiter disconnecting
        mid-flight detaches only itself; the shared computation runs to
        completion and the remaining waiters get the answer."""

        async def scenario():
            flights = SingleFlight()
            finished = asyncio.Event()

            async def compute():
                await asyncio.sleep(0.05)
                finished.set()
                return 42

            flight, _ = flights.join("key", compute)
            doomed = asyncio.ensure_future(flights.wait(flight))
            survivor = asyncio.ensure_future(flights.wait(flight))
            await asyncio.sleep(0.01)
            doomed.cancel()
            with pytest.raises(asyncio.CancelledError):
                await doomed
            assert not flight.task.cancelled()
            assert await survivor == 42
            assert finished.is_set()
            assert flight.peak_waiters == 2

        asyncio.run(scenario())

    def test_timed_out_waiter_leaves_the_flight_running(self):
        async def scenario():
            flights = SingleFlight()

            async def compute():
                await asyncio.sleep(0.05)
                return "late"

            flight, _ = flights.join("key", compute)
            with pytest.raises(asyncio.TimeoutError):
                await flights.wait(flight, timeout=0.005)
            assert not flight.task.done()
            assert await flights.wait(flight) == "late"

        asyncio.run(scenario())

    def test_failures_fan_out_to_every_waiter(self):
        async def scenario():
            flights = SingleFlight()

            async def compute():
                await asyncio.sleep(0)
                raise RuntimeError("poisoned")

            flight, _ = flights.join("key", compute)
            waits = [flights.wait(flight) for _ in range(3)]
            results = await asyncio.gather(*waits, return_exceptions=True)
            assert all(isinstance(r, RuntimeError) for r in results)
            assert len(flights) == 0

        asyncio.run(scenario())

    def test_new_flight_after_completion(self):
        async def scenario():
            flights = SingleFlight()

            async def compute():
                return "v"

            first, leader = flights.join("key", compute)
            assert await flights.wait(first) == "v"
            second, leader_again = flights.join("key", compute)
            assert leader and leader_again
            assert second is not first
            assert await flights.wait(second) == "v"

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Unit: admission control
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_sheds_past_capacity_with_retry_after(self):
        gate = AdmissionController(max_concurrency=2, max_queue_depth=1)
        tickets = [gate.admit() for _ in range(3)]
        with pytest.raises(Shed) as shed:
            gate.admit()
        assert shed.value.reason == "queue_full"
        assert 1.0 <= shed.value.retry_after <= 30.0
        assert gate.shed["queue_full"] == 1
        tickets[0].release()
        gate.admit().release()  # capacity freed

    def test_ticket_release_is_idempotent(self):
        gate = AdmissionController(max_concurrency=1, max_queue_depth=0)
        ticket = gate.admit()
        ticket.release()
        ticket.release()
        assert gate.standing == 0
        assert gate.completed == 1

    def test_ticket_context_manager(self):
        gate = AdmissionController(max_concurrency=1, max_queue_depth=0)
        with gate.admit():
            assert gate.standing == 1
        assert gate.standing == 0

    def test_retry_after_tracks_service_time(self):
        clock = [0.0]
        gate = AdmissionController(
            max_concurrency=1, max_queue_depth=10, clock=lambda: clock[0]
        )
        for _ in range(6):  # six 10-second services drive the EMA up
            ticket = gate.admit()
            clock[0] += 10.0
            ticket.release()
        for _ in range(5):  # standing backlog of 5
            gate.admit()
        assert gate.retry_after() > 5.0
        assert gate.retry_after() <= 30.0

    def test_memory_budget_sheds_new_work(self, monkeypatch):
        from repro.net import admission as admission_module

        gate = AdmissionController(
            max_concurrency=4, max_queue_depth=4, memory_budget_bytes=100
        )
        monkeypatch.setattr(admission_module, "rss_bytes", lambda: 101)
        with pytest.raises(Shed) as shed:
            gate.admit()
        assert shed.value.reason == "memory"
        monkeypatch.setattr(admission_module, "rss_bytes", lambda: 99)
        gate.admit().release()

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrency=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=-1)


# ---------------------------------------------------------------------------
# Unit: HTTP parsing limits
# ---------------------------------------------------------------------------
class TestHttpParsing:
    def _parse(self, blob, **kwargs):
        from repro.net.http import read_request

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(blob)
            reader.feed_eof()
            return await read_request(reader, **kwargs)

        return asyncio.run(scenario())

    def test_parses_request_with_body(self):
        request = self._parse(
            b"POST /v1/graphs/g/query?x=1&x=2 HTTP/1.1\r\n"
            b"Host: h\r\nX-Deadline: 2s\r\nContent-Length: 2\r\n\r\n{}"
        )
        assert request.method == "POST"
        assert request.parts == ["v1", "graphs", "g", "query"]
        assert request.query == {"x": "1"}  # first value wins
        assert request.param("deadline") == "2s"
        assert request.body == b"{}"

    def test_clean_eof_returns_none(self):
        assert self._parse(b"") is None

    @pytest.mark.parametrize(
        "blob,code",
        [
            (b"NONSENSE\r\n\r\n", "bad_request_line"),
            (b"GET / HTTP/2.0\r\n\r\n", "bad_version"),
            (b"GET / HTTP/1.1\r\nbroken line\r\n\r\n", "bad_header"),
            (b"GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n", "bad_content_length"),
            (b"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", "bad_content_length"),
            (b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", "unsupported_encoding"),
            (b"GET / HTT", "truncated_head"),
        ],
    )
    def test_malformed_requests_get_structured_errors(self, blob, code):
        with pytest.raises(HttpError) as error:
            self._parse(blob)
        assert error.value.code == code

    def test_oversized_body_rejected_before_reading(self):
        with pytest.raises(HttpError) as error:
            self._parse(
                b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n" + b"x" * 999,
                max_body_bytes=100,
            )
        assert error.value.status == 413

    def test_request_helpers(self):
        request = Request("GET", "/a/b?q=1", {"connection": "close"}, b"")
        assert request.wants_close()
        assert request.param("q") == "1"
        assert request.param("missing", "d") == "d"


# ---------------------------------------------------------------------------
# Live server: basic serving contract
# ---------------------------------------------------------------------------
class TestServerBasics:
    def test_round_trip_and_differential_answers(self, paper_graph):
        with ServerHarness({"paper": paper_graph}, config=ServerConfig(port=0)) as h:
            assert h.get("/healthz").json()["status"] == "ok"

            reply = h.get("/v1/graphs/paper/cliques?alpha=3&k=1")
            assert reply.status == 200
            payload = reply.json()
            assert payload["tenant"] == "paper"
            assert not payload["partial"]
            assert _payload_cliques(payload) == _expected_cliques(paper_graph, 3.0, 1)

            # A repeat must produce a bit-identical result core.
            again = h.get("/v1/graphs/paper/cliques?alpha=3&k=1").json()
            assert _result_core(again) == _result_core(payload)

            top = h.get("/v1/graphs/paper/cliques?alpha=3&k=1&mode=top&r=2").json()
            assert top["count"] >= 1
            assert top["params"]["mode"] == "top"

            query = h.post(
                "/v1/graphs/paper/query", {"nodes": [1, 2], "alpha": 3, "k": 1}
            ).json()
            assert all(
                {1, 2} <= set(clique["nodes"]) for clique in query["cliques"]
            )

            stats = h.get("/v1/graphs/paper/stats").json()
            assert stats["name"] == "paper"
            assert "cache" in stats

            described = h.get("/v1/server").json()
            assert described["graphs"] == ["paper"]
            assert described["counters"]["responses"] >= 5

    def test_warm_start_param_round_trip(self, paper_graph):
        with ServerHarness({"paper": paper_graph}, config=ServerConfig(port=0)) as h:
            seeded = h.get(
                "/v1/graphs/paper/cliques?alpha=3&k=1&mode=top&r=2&warm_start=portfolio"
            ).json()
            plain = h.get("/v1/graphs/paper/cliques?alpha=3&k=1&mode=top&r=2").json()
            assert seeded["params"]["warm_start"] == "portfolio"
            assert plain["params"]["warm_start"] is None
            # Seeding never changes the answer served over the wire.
            assert _payload_cliques(seeded) == _payload_cliques(plain)
            bad = h.get(
                "/v1/graphs/paper/cliques?alpha=3&k=1&mode=top&r=2&warm_start=zap"
            )
            assert bad.status == 400
            assert bad.json()["error"]["code"] == "bad_params"

    def test_structured_errors_keep_the_connection_cheap(self, paper_graph):
        with ServerHarness({"g": paper_graph}, config=ServerConfig(port=0)) as h:
            assert h.get("/nope").json()["error"]["code"] == "not_found"
            assert h.get("/v1/graphs/ghost/cliques").status == 404
            assert h.get("/v1/graphs/ghost/cliques").json()["error"]["code"] == "unknown_graph"
            assert h.get("/v1/graphs/g/cliques?alpha=zap").json()["error"]["code"] == "bad_params"
            assert h.get("/v1/graphs/g/cliques?mode=sideways").json()["error"]["code"] == "bad_params"
            assert (
                h.get("/v1/graphs/g/cliques?deadline=-1s").json()["error"]["code"]
                == "bad_request"
            )
            reply = h.request("PATCH", "/v1/graphs/g")
            assert reply.status == 405
            bad_json = h.post("/v1/graphs/g/query", b"{not json")
            assert bad_json.json()["error"]["code"] == "bad_json"
            # After all that abuse, normal service continues.
            assert h.get("/healthz").status == 200

    def test_server_route_is_exact(self, paper_graph):
        with ServerHarness({"g": paper_graph}, config=ServerConfig(port=0)) as h:
            assert h.get("/v1/server").status == 200
            assert h.get("/v1/server/anything").status == 404
            assert h.get("/v1/server/anything/else").status == 404

    def test_loop_stays_responsive_while_search_holds_engine_lock(self, paper_graph):
        """Regression: fingerprint/describe/stats reads must never take
        the engine lock on the event loop. A slow search used to stall
        /healthz, listings, and every other tenant for its duration."""
        other = SignedGraph([(0, 1, 1), (1, 2, 1), (0, 2, 1)])
        with ServerHarness(
            {"g": paper_graph, "other": other}, config=ServerConfig(port=0)
        ) as h:
            engine = h.registry.get("g").engine
            original = engine.run_grid
            entered = threading.Event()

            def slow(*args, **kwargs):
                entered.set()  # engine lock is held from here on
                time.sleep(2.5)
                return original(*args, **kwargs)

            engine.run_grid = slow
            blocker = threading.Thread(
                target=http_request,
                args=(h.host, h.port, "GET", "/v1/graphs/g/cliques?alpha=3&k=1"),
                kwargs={"timeout": 30},
            )
            blocker.start()
            assert entered.wait(5.0)
            # Every loop-served read — including the blocked tenant's
            # own stats and a *different* tenant's query — answers
            # promptly while the lock is held for 2.5s.
            for path in (
                "/healthz",
                "/v1/server",
                "/v1/graphs",
                "/v1/graphs/g",
                "/v1/graphs/g/stats",
                "/metrics",
                "/v1/graphs/other/cliques?alpha=3&k=0",
            ):
                reply = h.get(path, timeout=10)
                assert reply.status == 200, path
                assert reply.elapsed < 1.0, path
            blocker.join()
        with ServerHarness({"a": paper_graph}, config=ServerConfig(port=0)) as h:
            created = h.request(
                "PUT",
                "/v1/graphs/b",
                body={"edges": [[0, 1, 1], [1, 2, 1], [0, 2, 1]]},
            )
            assert created.status == 201
            assert [g["name"] for g in h.get("/v1/graphs").json()["graphs"]] == ["a", "b"]
            assert h.get("/v1/graphs/b/cliques?alpha=3&k=0").json()["count"] == 1
            dupe = h.request("PUT", "/v1/graphs/b", body={"edges": [[0, 1, 1]]})
            assert dupe.status == 400
            bad_name = h.request("PUT", "/v1/graphs/-x", body={"edges": [[0, 1, 1]]})
            assert bad_name.status == 400
            assert h.request("DELETE", "/v1/graphs/b").status == 200
            assert h.get("/v1/graphs/b").status == 404


# ---------------------------------------------------------------------------
# Live server: coalescing
# ---------------------------------------------------------------------------
class TestCoalescing:
    def _slow_engine(self, harness, tenant, seconds):
        """Wrap the tenant engine's grid entry point with a fixed delay."""
        engine = harness.registry.get(tenant).engine
        original = engine.run_grid

        def slow(*args, **kwargs):
            time.sleep(seconds)
            return original(*args, **kwargs)

        engine.run_grid = slow
        return engine

    def _await_flight(self, harness, timeout=5.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            if len(harness.server.flights) > 0:
                return
            time.sleep(0.005)
        raise TimeoutError("no flight appeared")

    def test_identical_requests_share_one_compute(self, paper_graph):
        with ServerHarness({"g": paper_graph}, config=ServerConfig(port=0)) as h:
            self._slow_engine(h, "g", 0.4)
            path = "/v1/graphs/g/cliques?alpha=3&k=1"
            replies = []
            lock = threading.Lock()

            def client():
                reply = http_request(h.host, h.port, "GET", path, timeout=30)
                with lock:
                    replies.append(reply)

            leader = threading.Thread(target=client)
            leader.start()
            self._await_flight(h)
            followers = [threading.Thread(target=client) for _ in range(4)]
            for thread in followers:
                thread.start()
            leader.join()
            for thread in followers:
                thread.join()

            assert all(reply.status == 200 for reply in replies)
            cores = [_result_core(reply.json()) for reply in replies]
            assert all(core == cores[0] for core in cores)
            assert h.server.counters["computes"] == 1
            assert h.server.counters["coalesced"] == 4
            assert sum(1 for r in replies if r.json()["coalesced"]) == 4

    def test_waiter_disconnect_mid_flight_keeps_the_flight(self, paper_graph):
        """Satellite: a client that vanishes mid-flight must not cancel
        the shared computation other clients are waiting on."""
        with ServerHarness({"g": paper_graph}, config=ServerConfig(port=0)) as h:
            self._slow_engine(h, "g", 0.5)
            path = "/v1/graphs/g/cliques?alpha=3&k=1"
            survivor_reply = []

            def survivor():
                survivor_reply.append(
                    http_request(h.host, h.port, "GET", path, timeout=30)
                )

            leader = threading.Thread(target=survivor)
            leader.start()
            self._await_flight(h)
            # Two clients join the flight and abandon it immediately.
            half_request(h.host, h.port, path)
            half_request(h.host, h.port, path)
            leader.join()

            assert survivor_reply[0].status == 200
            payload = survivor_reply[0].json()
            assert _payload_cliques(payload) == _expected_cliques(paper_graph, 3.0, 1)
            assert h.server.counters["computes"] == 1
            # And the server is still healthy afterwards.
            assert h.get("/healthz").status == 200

    def test_no_coalesce_mode_computes_every_request(self, paper_graph):
        config = ServerConfig(port=0, coalesce=False)
        with ServerHarness({"g": paper_graph}, config=config) as h:
            path = "/v1/graphs/g/cliques?alpha=3&k=1"
            for _ in range(3):
                assert h.get(path).status == 200
            assert h.server.counters["computes"] == 3
            assert h.server.counters["coalesced"] == 0

    def test_edits_version_the_coalescing_keys(self, paper_graph):
        """An in-flight reader whose compute already holds the engine
        lock finishes on its fingerprint (the edit waits its turn);
        post-edit requests see the new one."""
        with ServerHarness({"g": paper_graph}, config=ServerConfig(port=0)) as h:
            engine = h.registry.get("g").engine
            original = engine.run_grid
            entered = threading.Event()

            def slow(*args, **kwargs):
                entered.set()  # the compute holds the engine lock here
                time.sleep(0.5)
                return original(*args, **kwargs)

            engine.run_grid = slow
            path = "/v1/graphs/g/cliques?alpha=3&k=1"
            reader_reply = []

            def reader():
                reader_reply.append(
                    http_request(h.host, h.port, "GET", path, timeout=30)
                )

            before = h.get("/v1/graphs/g").json()["fingerprint"]
            thread = threading.Thread(target=reader)
            thread.start()
            assert entered.wait(5.0)  # reader's compute owns the lock
            edited = h.post(
                "/v1/graphs/g/edits", {"edits": [["add", 1, 100, 1]]}
            ).json()
            thread.join()

            assert edited["fingerprint_before"] == before
            assert edited["fingerprint_after"] != before
            # The in-flight reader answered against its own version,
            # and the payload says so exactly.
            payload = reader_reply[0].json()
            assert payload["fingerprint"] == before
            assert payload["fingerprint_requested"] == before
            assert not payload["version_changed"]
            after = h.get(path).json()
            assert after["fingerprint"] == edited["fingerprint_after"]

    def test_version_skew_is_labelled_not_mislabelled(self, paper_graph):
        """When an edit wins the race between a request's keying and
        its compute, the response carries the fingerprint the result
        was *computed* against and flags ``version_changed`` — it is
        never returned silently mislabelled with the stale key."""
        config = ServerConfig(port=0, max_concurrency=1, max_queue_depth=4)
        with ServerHarness({"g": paper_graph}, config=config) as h:
            engine = h.registry.get("g").engine
            original = engine.run_grid
            entered = threading.Event()

            def slow_once(*args, **kwargs):
                if not entered.is_set():
                    entered.set()
                    time.sleep(0.8)
                return original(*args, **kwargs)

            engine.run_grid = slow_once
            before = h.get("/v1/graphs/g").json()["fingerprint"]
            replies = {}

            def client(name, method, path, body=None):
                replies[name] = http_request(
                    h.host, h.port, method, path, body=body, timeout=30
                )

            # One slow occupier pins the single executor thread; the
            # edit queues behind it; the reader keys under `before` but
            # its compute queues behind the edit.
            occupier = threading.Thread(
                target=client, args=("occupier", "GET", "/v1/graphs/g/cliques?alpha=3&k=1")
            )
            occupier.start()
            assert entered.wait(5.0)
            editor = threading.Thread(
                target=client,
                args=("edit", "POST", "/v1/graphs/g/edits"),
                kwargs={"body": {"edits": [["add", 1, 100, 1]]}},
            )
            editor.start()
            time.sleep(0.2)  # edit's apply is queued before the reader's compute
            reader = threading.Thread(
                target=client, args=("reader", "GET", "/v1/graphs/g/cliques?alpha=2&k=1")
            )
            reader.start()
            for thread in (occupier, editor, reader):
                thread.join()

            after = replies["edit"].json()["fingerprint_after"]
            assert after != before
            payload = replies["reader"].json()
            assert payload["fingerprint_requested"] == before
            assert payload["fingerprint"] == after
            assert payload["version_changed"]


# ---------------------------------------------------------------------------
# Live server: overload, deadlines, slow clients
# ---------------------------------------------------------------------------
class TestOverload:
    def test_sheds_with_retry_after_past_capacity(self, paper_graph):
        config = ServerConfig(port=0, max_concurrency=1, max_queue_depth=0)
        with ServerHarness({"g": paper_graph}, config=config) as h:
            engine = h.registry.get("g").engine
            original = engine.run_grid

            def slow(*args, **kwargs):
                time.sleep(0.6)
                return original(*args, **kwargs)

            engine.run_grid = slow
            occupier = threading.Thread(
                target=http_request,
                args=(h.host, h.port, "GET", "/v1/graphs/g/cliques?alpha=3&k=1"),
                kwargs={"timeout": 30},
            )
            occupier.start()
            deadline = time.time() + 5
            shed_reply = None
            while time.time() < deadline:
                if len(h.server.flights) > 0:
                    # Distinct key -> needs a fresh ticket -> shed.
                    shed_reply = h.get("/v1/graphs/g/cliques?alpha=2&k=1")
                    break
                time.sleep(0.005)
            occupier.join()
            assert shed_reply is not None and shed_reply.status == 503
            body = shed_reply.json()
            assert body["error"]["code"] == "shed_queue_full"
            assert int(shed_reply.headers["retry-after"]) >= 1
            assert h.server.counters["shed"] == 1
            # The shed was cheap and the server still answers.
            assert h.get("/healthz").status == 200

    def test_deadline_exceeded_is_a_504_not_a_hang(self, paper_graph):
        with ServerHarness({"g": paper_graph}, config=ServerConfig(port=0)) as h:
            engine = h.registry.get("g").engine
            original = engine.run_grid

            def slow(*args, **kwargs):
                time.sleep(1.5)
                return original(*args, **kwargs)

            engine.run_grid = slow
            started = time.perf_counter()
            reply = h.get("/v1/graphs/g/cliques?alpha=3&k=1&deadline=100ms", timeout=30)
            elapsed = time.perf_counter() - started
            assert reply.status == 504
            assert reply.json()["error"]["code"] == "deadline_exceeded"
            assert elapsed < 1.0  # answered at the deadline, not after the compute
            assert h.server.counters["deadline_exceeded"] == 1

    def test_edit_deadline_reports_ambiguity_and_keeps_the_slot(self, paper_graph):
        """An edit that outlives its deadline answers 504 carrying the
        pre-edit fingerprint (so clients can tell whether it landed),
        keeps its admission slot until the executor thread actually
        finishes, and journals how the ambiguous edit settled."""
        with ServerHarness({"g": paper_graph}, config=ServerConfig(port=0)) as h:
            engine = h.registry.get("g").engine
            original = engine.apply_edits
            release = threading.Event()

            def stalled(edits):
                release.wait(10.0)
                return original(edits)

            engine.apply_edits = stalled
            before = h.get("/v1/graphs/g").json()["fingerprint"]
            reply = h.post(
                "/v1/graphs/g/edits?deadline=100ms",
                {"edits": [["add", 1, 100, 1]]},
            )
            assert reply.status == 504
            error = reply.json()["error"]
            assert error["code"] == "deadline_exceeded"
            assert error["detail"]["fingerprint_before"] == before
            assert error["detail"]["edit_outcome"] == "unknown"
            assert h.server.counters["deadline_exceeded"] == 1
            # The 504 went out but the edit still occupies a worker:
            # its admission slot must not be handed back yet.
            assert h.server.admission.standing == 1
            release.set()
            deadline = time.time() + 5
            while time.time() < deadline and h.server.admission.standing:
                time.sleep(0.01)
            assert h.server.admission.standing == 0
            # The mutation landed after the deadline — fingerprint
            # moved, and the journal recorded the late settlement.
            deadline = time.time() + 5
            while (
                time.time() < deadline
                and h.get("/v1/graphs/g").json()["fingerprint"] == before
            ):
                time.sleep(0.01)
            assert h.get("/v1/graphs/g").json()["fingerprint"] != before
            settled = h.observer.journal.of_kind("net_edit_after_deadline")
            assert settled and settled[-1]["applied"] is True
        config = ServerConfig(port=0, read_timeout=0.4)
        with ServerHarness({"g": paper_graph}, config=config) as h:
            elapsed = slow_loris(h.host, h.port, max_seconds=10.0)
            assert elapsed < 5.0
            deadline = time.time() + 2
            while time.time() < deadline and h.server.counters["slow_client_drops"] == 0:
                time.sleep(0.01)
            assert h.server.counters["slow_client_drops"] >= 1
            assert h.get("/healthz").status == 200

    def test_deadline_longer_than_cap_is_clamped(self, paper_graph):
        config = ServerConfig(port=0, max_deadline=0.2)
        with ServerHarness({"g": paper_graph}, config=config) as h:
            engine = h.registry.get("g").engine
            original = engine.run_grid

            def slow(*args, **kwargs):
                time.sleep(1.0)
                return original(*args, **kwargs)

            engine.run_grid = slow
            started = time.perf_counter()
            reply = h.get("/v1/graphs/g/cliques?alpha=3&k=1&deadline=300s", timeout=30)
            assert reply.status == 504
            assert time.perf_counter() - started < 1.0


# ---------------------------------------------------------------------------
# Live server: graceful degradation
# ---------------------------------------------------------------------------
class TestDegradation:
    def test_poisoned_request_is_a_500_and_the_server_survives(self, paper_graph):
        with ServerHarness({"g": paper_graph}, config=ServerConfig(port=0)) as h:
            engine = h.registry.get("g").engine

            def poisoned(*args, **kwargs):
                raise RuntimeError("engine poisoned")

            engine.query_with_stats = poisoned
            reply = h.post("/v1/graphs/g/query", {"nodes": [1], "alpha": 3, "k": 1})
            assert reply.status == 500
            assert reply.json()["error"]["code"] == "internal"
            # Other endpoints (and other tenants' code paths) still work.
            assert h.get("/v1/graphs/g/cliques?alpha=3&k=1").status == 200
            assert h.get("/healthz").status == 200
            assert h.observer.journal.of_kind("net_error")

    def test_worker_pool_collapse_degrades_to_a_correct_answer(self, random_graph):
        expected = _expected_cliques(random_graph, 2.0, 1)
        with ServerHarness(
            {"g": random_graph}, config=ServerConfig(port=0), workers=2
        ) as h:
            with injected(FaultPlan(fail_worker_spawn=True)):
                reply = h.get("/v1/graphs/g/cliques?alpha=2&k=1", timeout=60)
            assert reply.status == 200
            payload = reply.json()
            assert not payload["partial"]
            assert _payload_cliques(payload) == expected
            assert h.get("/healthz").status == 200

    def test_cache_dir_corruption_is_survived(self, paper_graph, tmp_path):
        expected = _expected_cliques(paper_graph, 3.0, 1)
        with ServerHarness(
            {"g": paper_graph}, config=ServerConfig(port=0), cache_dir=tmp_path
        ) as h:
            first = h.get("/v1/graphs/g/cliques?alpha=3&k=1")
            assert first.status == 200
            # Corrupt every cache artifact on disk, then force disk reads.
            corrupted = 0
            for path in (tmp_path / "g").rglob("*"):
                if path.is_file():
                    path.write_bytes(b"\x00garbage\xff")
                    corrupted += 1
            assert corrupted > 0
            h.registry.get("g").engine.memory.clear()
            second = h.get("/v1/graphs/g/cliques?alpha=3&k=1")
            assert second.status == 200
            assert _payload_cliques(second.json()) == expected


# ---------------------------------------------------------------------------
# Live server: observability
# ---------------------------------------------------------------------------
class TestMetricsExposure:
    def test_per_tenant_lru_series_and_net_counters(self, paper_graph):
        other = SignedGraph([(0, 1, 1), (1, 2, 1), (0, 2, 1)])
        with ServerHarness(
            {"acme": paper_graph, "beta": other}, config=ServerConfig(port=0)
        ) as h:
            for _ in range(2):  # second pass hits the memory tier
                h.get("/v1/graphs/acme/cliques?alpha=3&k=1")
                h.get("/v1/graphs/beta/cliques?alpha=3&k=0")
            text = h.metrics()
            assert 'repro_serve_lru_hits_total{tenant="acme"}' in text
            assert 'repro_serve_lru_hits_total{tenant="beta"}' in text
            assert "# TYPE repro_serve_lru_hits_total counter" in text
            assert "repro_net_requests_total" in text
            assert "repro_net_computes_total" in text
            reply = h.get("/metrics")
            assert reply.headers["content-type"].startswith("text/plain")

    def test_shed_and_journal_events_are_recorded(self, paper_graph):
        config = ServerConfig(port=0, max_concurrency=1, max_queue_depth=0)
        with ServerHarness({"g": paper_graph}, config=config) as h:
            engine = h.registry.get("g").engine
            original = engine.run_grid

            def slow(*args, **kwargs):
                time.sleep(0.4)
                return original(*args, **kwargs)

            engine.run_grid = slow
            blocker = threading.Thread(
                target=http_request,
                args=(h.host, h.port, "GET", "/v1/graphs/g/cliques?alpha=3&k=1"),
                kwargs={"timeout": 30},
            )
            blocker.start()
            deadline = time.time() + 5
            while time.time() < deadline and len(h.server.flights) == 0:
                time.sleep(0.005)
            h.get("/v1/graphs/g/cliques?alpha=2&k=2")  # shed
            blocker.join()
            assert "repro_net_shed_total 1" in h.metrics()
            assert h.observer.journal.of_kind("net_shed")


# ---------------------------------------------------------------------------
# Load shape sanity (the benchmark gates the ratio; this pins behaviour)
# ---------------------------------------------------------------------------
class TestLoadShapes:
    def test_duplicate_burst_all_served_under_tiny_capacity(self, paper_graph):
        config = ServerConfig(port=0, max_concurrency=1, max_queue_depth=0)
        with ServerHarness({"g": paper_graph}, config=config) as h:
            engine = h.registry.get("g").engine
            original = engine.run_grid

            def slow(*args, **kwargs):
                time.sleep(0.3)
                return original(*args, **kwargs)

            engine.run_grid = slow
            path = "/v1/graphs/g/cliques?alpha=3&k=1"
            report = closed_loop(
                lambda client, index: http_request(
                    h.host, h.port, "GET", path, timeout=30
                ),
                clients=8,
                requests_per_client=1,
            )
            # Capacity is ONE compute; coalescing serves all eight.
            assert report.ok == 8
            assert report.shed == 0
            assert h.server.counters["computes"] <= 2

    def test_cli_serve_smoke(self, paper_graph, tmp_path, capsys):
        from repro.cli import main as cli_main
        from repro.io import write_signed_edgelist

        path = tmp_path / "g.sg"
        write_signed_edgelist(paper_graph, path)
        code = cli_main(
            [
                "serve",
                f"demo={path}",
                "--port",
                "0",
                "--exit-after",
                "0.3",
                "--default-deadline",
                "5s",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving demo on http://" in out
