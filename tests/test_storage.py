"""Tests for the storage tier: graph artifacts, spilling, transports.

The contracts under test, in the order the module builds them up:

* the header/layout codec round-trips and rejects corrupt prefixes;
* ``CompiledGraph.save`` / ``CompiledGraph.mmap`` round-trip every
  array bit-identically, enforce read-only attachment, and verify
  stamped fingerprints;
* searches over a mmapped graph equal searches over the in-memory
  compilation on every available kernel backend;
* the mmap transport of ``SharedCompiledGraph`` is interchangeable with
  the shared-memory transport (including for multi-process runs);
* the spill oracle: a run under an absurdly small memory budget spills
  pending frames to disk yet reproduces the unbudgeted run's cliques
  *and* stats bit-for-bit, leaving no files behind.
"""

import gc
import os
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MSCE, AlphaK, enumerate_parallel
from repro.exceptions import ParameterError, SharedMemoryError, StorageError
from repro.fastpath import storage
from repro.fastpath.backend import HAS_NUMPY, available_backends
from repro.fastpath.compiled import CompiledGraph, compile_graph
from repro.fastpath.shared import (
    TRANSPORT_ENV,
    TRANSPORTS,
    SharedCompiledGraph,
    resolve_transport,
)
from repro.generators import gnp_signed
from repro.graphs import SignedGraph
from repro.io.cache import graph_fingerprint

ARRAY_SLOTS = ("xadj", "pxadj", "nxadj", "adj", "padj", "nadj", "signs")


def _search_graph(seed: int = 7, n: int = 60) -> SignedGraph:
    return gnp_signed(n, 0.3, negative_fraction=0.25, seed=seed)


def _many_component_graph(components: int = 120, n: int = 14) -> SignedGraph:
    """Many disjoint communities: the shape that fills the seed frontier.

    Within one component the branch-and-bound stack stays shallow, so
    spilling engages on the *frame* frontier — many components means
    many pending seed frames, which is exactly the out-of-core case.
    """
    graph = SignedGraph()
    for index in range(components):
        blob = gnp_signed(n, 0.5, negative_fraction=0.25, seed=index)
        for u, v, sign in blob.edges():
            graph.add_edge(f"{index}:{u}", f"{index}:{v}", sign)
    return graph


def _fingerprint(result):
    return (
        [(c.nodes, c.positive_edges, c.negative_edges) for c in result.cliques],
        result.stats.as_dict(),
    )


# ----------------------------------------------------------------------
# Header / layout codec
# ----------------------------------------------------------------------
class TestHeaderCodec:
    dims = st.integers(min_value=0, max_value=2**40)

    @settings(max_examples=200, deadline=None)
    @given(
        flags=st.integers(min_value=0, max_value=7),
        n=dims,
        m_all=dims,
        m_pos=dims,
        m_neg=dims,
        nodes_len=dims,
        fingerprint=st.binary(min_size=32, max_size=32),
    )
    def test_encode_decode_roundtrip(
        self, flags, n, m_all, m_pos, m_neg, nodes_len, fingerprint
    ):
        header = storage.StorageHeader(
            storage.STORAGE_VERSION, flags, n, m_all, m_pos, m_neg, nodes_len, fingerprint
        )
        blob = storage.encode_header(header)
        assert len(blob) == storage.HEADER_BYTES
        assert storage.decode_header(blob) == header
        # The layout derived from the decoded header is internally
        # consistent: 8-aligned, non-overlapping, in declaration order.
        segments, total = storage.data_layout(header)
        cursor = storage.HEADER_BYTES
        for name, (offset, length) in segments.items():
            assert offset % 8 == 0
            assert offset >= cursor
            cursor = offset + length
        assert total == cursor

    def test_rejects_bad_magic(self):
        blob = b"NOTAMAGC" + b"\x00" * (storage.HEADER_BYTES - 8)
        with pytest.raises(StorageError, match="magic"):
            storage.decode_header(blob)

    def test_rejects_unknown_version(self):
        header = storage.StorageHeader(
            storage.STORAGE_VERSION, 0, 1, 0, 0, 0, 0, b"\x00" * 32
        )
        blob = bytearray(storage.encode_header(header))
        blob[8] = 0xFF  # version low byte
        with pytest.raises(StorageError, match="version"):
            storage.decode_header(bytes(blob))

    def test_rejects_truncated_prefix(self):
        with pytest.raises(StorageError, match="truncated"):
            storage.decode_header(b"RSGRAPH1")

    def test_rejects_negative_dimensions_on_encode(self):
        header = storage.StorageHeader(
            storage.STORAGE_VERSION, 0, -1, 0, 0, 0, 0, b"\x00" * 32
        )
        with pytest.raises(StorageError, match="negative"):
            storage.encode_header(header)


# ----------------------------------------------------------------------
# Save / mmap round trip
# ----------------------------------------------------------------------
class TestSaveMmapRoundTrip:
    def test_arrays_bit_identical(self, tmp_path):
        compiled = compile_graph(_search_graph())
        path = tmp_path / "g.graph"
        written = compiled.save(path)
        assert written == path.stat().st_size
        attached = CompiledGraph.mmap(path)
        try:
            assert attached.n == compiled.n
            assert attached.nodes == compiled.nodes
            for slot in ARRAY_SLOTS:
                assert list(getattr(attached, slot)) == list(
                    getattr(compiled, slot)
                ), slot
        finally:
            storage.release_views(attached)
            attached._storage.close()

    def test_mmap_is_zero_copy(self, tmp_path):
        compiled = compile_graph(_search_graph())
        path = tmp_path / "g.graph"
        compiled.save(path)
        attached = CompiledGraph.mmap(path)
        try:
            for slot in ARRAY_SLOTS:
                assert isinstance(getattr(attached, slot), memoryview), slot
        finally:
            storage.release_views(attached)
            attached._storage.close()

    def test_mmap_views_are_read_only(self, tmp_path):
        compiled = compile_graph(_search_graph())
        path = tmp_path / "g.graph"
        compiled.save(path)
        attached = CompiledGraph.mmap(path)
        try:
            with pytest.raises(TypeError):
                attached.xadj[0] = 1
            with pytest.raises(TypeError):
                attached.signs[0] = 0
        finally:
            storage.release_views(attached)
            attached._storage.close()

    def test_fingerprint_verified_on_attach(self, tmp_path):
        graph = _search_graph()
        compiled = compile_graph(graph)
        fingerprint = graph_fingerprint(graph)
        path = tmp_path / "g.graph"
        compiled.save(path, fingerprint=fingerprint)
        attached = CompiledGraph.mmap(path, expected_fingerprint=fingerprint)
        storage.release_views(attached)
        attached._storage.close()
        with pytest.raises(StorageError, match="fingerprint"):
            CompiledGraph.mmap(path, expected_fingerprint="ab" * 32)

    def test_unstamped_artifact_fails_fingerprint_check(self, tmp_path):
        compiled = compile_graph(_search_graph())
        path = tmp_path / "g.graph"
        compiled.save(path)  # no fingerprint stamped
        fingerprint = graph_fingerprint(_search_graph())
        with pytest.raises(StorageError, match="fingerprint"):
            CompiledGraph.mmap(path, expected_fingerprint=fingerprint)

    def test_truncated_file_is_rejected(self, tmp_path):
        compiled = compile_graph(_search_graph())
        path = tmp_path / "g.graph"
        total = compiled.save(path)
        with open(path, "r+b") as handle:
            handle.truncate(total - 16)
        with pytest.raises(StorageError, match="truncated"):
            CompiledGraph.mmap(path)

    def test_non_artifact_file_is_rejected(self, tmp_path):
        path = tmp_path / "not-a-graph"
        path.write_bytes(b"\x00" * 512)
        with pytest.raises(StorageError, match="magic"):
            CompiledGraph.mmap(path)

    @pytest.mark.skipif(not HAS_NUMPY, reason="packed matrices need numpy")
    def test_packed_matrices_preseeded_and_identical(self, tmp_path):
        import numpy as np

        compiled = compile_graph(_search_graph())
        path = tmp_path / "g.graph"
        compiled.save(path, packed="always")
        attached = CompiledGraph.mmap(path)
        try:
            assert set(attached._packed) == set(storage.PACKED_SIGNS)
            for sign in storage.PACKED_SIGNS:
                assert np.array_equal(attached._packed[sign], compiled.packed(sign))
                with pytest.raises(ValueError):
                    attached._packed[sign][0, 0] = 1  # read-only frombuffer
        finally:
            storage.release_views(attached)
            attached._storage.close()

    def test_packed_none_stores_csr_only(self, tmp_path):
        compiled = compile_graph(_search_graph())
        path = tmp_path / "g.graph"
        compiled.save(path, packed="none")
        attached = CompiledGraph.mmap(path)
        try:
            assert attached._storage.header.flags == 0
            assert attached._packed == {}
        finally:
            storage.release_views(attached)
            attached._storage.close()

    def test_unknown_packed_mode_rejected(self, tmp_path):
        compiled = compile_graph(_search_graph())
        with pytest.raises(ParameterError, match="packed"):
            compiled.save(tmp_path / "g.graph", packed="sometimes")

    def test_save_is_atomic_no_temp_residue(self, tmp_path):
        compiled = compile_graph(_search_graph())
        compiled.save(tmp_path / "g.graph")
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {"g.graph"}

    @pytest.mark.parametrize("backend", available_backends())
    def test_search_over_mmapped_graph_matches_compiled(self, tmp_path, backend):
        graph = _search_graph()
        compiled = compile_graph(graph)
        expected = _fingerprint(
            MSCE(compiled, AlphaK(2, 2), backend=backend).enumerate_all()
        )
        path = tmp_path / "g.graph"
        compiled.save(path)
        attached = CompiledGraph.mmap(path)
        try:
            result = MSCE(attached, AlphaK(2, 2), backend=backend).enumerate_all()
            assert _fingerprint(result) == expected
        finally:
            storage.release_views(attached)
            attached._storage.close()

    def test_empty_graph_round_trips(self, tmp_path):
        compiled = compile_graph(SignedGraph())
        path = tmp_path / "empty.graph"
        compiled.save(path)
        attached = CompiledGraph.mmap(path)
        try:
            assert attached.n == 0
            assert list(attached.xadj) == [0]
        finally:
            storage.release_views(attached)
            attached._storage.close()


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------
class TestTransportResolver:
    def test_default_is_shm(self, monkeypatch):
        monkeypatch.delenv(TRANSPORT_ENV, raising=False)
        assert resolve_transport() == "shm"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "mmap")
        assert resolve_transport() == "mmap"

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "mmap")
        assert resolve_transport("shm") == "shm"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ParameterError, match="transport"):
            resolve_transport("carrier-pigeon")

    def test_unknown_env_transport_rejected(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "bogus")
        with pytest.raises(ParameterError, match="transport"):
            resolve_transport()

    def test_transports_tuple(self):
        assert TRANSPORTS == ("shm", "mmap")


class TestMmapTransport:
    def test_create_attach_round_trip(self):
        compiled = compile_graph(_search_graph())
        shared = SharedCompiledGraph.create(compiled, transport="mmap")
        try:
            assert shared.transport == "mmap"
            assert os.path.exists(shared.name)
            attached = SharedCompiledGraph.attach(shared.meta)
            graph = attached.graph
            try:
                assert graph.nodes == compiled.nodes
                for slot in ARRAY_SLOTS:
                    assert list(getattr(graph, slot)) == list(
                        getattr(compiled, slot)
                    ), slot
            finally:
                attached.close()
        finally:
            shared.unlink()
        assert not os.path.exists(shared.name)

    def test_legacy_shm_meta_still_attaches(self):
        compiled = compile_graph(_search_graph(n=20))
        shared = SharedCompiledGraph.create(compiled, transport="shm")
        try:
            legacy_meta = tuple(shared.meta[1:])  # pre-transport 6-tuple
            attached = SharedCompiledGraph.attach(legacy_meta)
            graph = attached.graph
            try:
                assert graph.nodes == compiled.nodes
            finally:
                attached.close()
        finally:
            shared.unlink()

    def test_malformed_meta_rejected(self):
        with pytest.raises(SharedMemoryError, match="meta"):
            SharedCompiledGraph.attach(("mmap", "/nope"))

    def test_spill_dir_hosts_transport_file(self, tmp_path):
        compiled = compile_graph(_search_graph(n=20))
        shared = SharedCompiledGraph.create(
            compiled, transport="mmap", dir=str(tmp_path)
        )
        try:
            assert Path(shared.name).parent == tmp_path
        finally:
            shared.unlink()

    def test_parallel_run_over_mmap_transport_is_bit_identical(self):
        graph = _search_graph(seed=11, n=150)
        expected = _fingerprint(MSCE(graph, AlphaK(2, 2)).enumerate_all())
        result = enumerate_parallel(graph, 2, 2, workers=2, transport="mmap")
        assert _fingerprint(result) == expected
        assert result.parallel["transport"] == "mmap"
        assert result.parallel["shared_graph_transport"] == "mmap"

    def test_transport_env_reaches_parallel_report(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "mmap")
        graph = _search_graph(seed=3, n=40)
        result = enumerate_parallel(graph, 2, 2, workers=2)
        assert result.parallel["transport"] == "mmap"


# ----------------------------------------------------------------------
# Frame store / spill frontier
# ----------------------------------------------------------------------
class TestFrameStore:
    def test_lifo_batch_round_trip(self):
        store = storage.FrameStore()
        try:
            first = [(0b1011, 0b1), (0b100, 0b10)]
            second = [(1 << 200 | 5, 1 << 128), (0, 0)]
            assert store.push_batch(first) == 2
            assert store.push_batch(second) == 2
            assert store.pending == 4
            assert store.pop_batch() == second
            assert store.pop_batch() == first
            assert store.pop_batch() == []
        finally:
            store.close()

    def test_truncate_on_pop_bounds_file_size(self):
        store = storage.FrameStore()
        try:
            for _ in range(8):
                store.push_batch([(1 << 512, 1 << 512)])
                store.pop_batch()
            # The file never accumulates popped batches.
            assert os.path.getsize(store.path) == 0
            assert store.spilled_frames == 8
        finally:
            store.close()

    def test_drain_returns_everything(self):
        store = storage.FrameStore()
        try:
            store.push_batch([(1, 2)])
            store.push_batch([(3, 4), (5, 6)])
            assert store.drain() == [(3, 4), (5, 6), (1, 2)]
            assert store.pending == 0
        finally:
            store.close()

    def test_close_removes_file_and_is_idempotent(self):
        store = storage.FrameStore()
        path = store.path
        store.close()
        store.close()
        assert not os.path.exists(path)

    @settings(max_examples=50, deadline=None)
    @given(
        frames=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 300),
                st.integers(min_value=0, max_value=1 << 300),
            ),
            max_size=20,
        )
    )
    def test_any_mask_pair_round_trips(self, frames):
        store = storage.FrameStore()
        try:
            store.push_batch(frames)
            assert store.pop_batch() == (frames or [])
        finally:
            store.close()


class TestSpillFrontier:
    def test_high_water_derived_from_budget(self):
        frontier = storage.SpillFrontier(1, n=64)
        try:
            assert frontier.high_water == storage.MIN_HIGH_WATER
        finally:
            frontier.close()
        big = storage.SpillFrontier(1 << 40, n=64)
        try:
            assert big.high_water == storage.MAX_HIGH_WATER
        finally:
            big.close()

    def test_should_spill_above_high_water(self):
        frontier = storage.SpillFrontier(1, n=8)
        try:
            assert not frontier.should_spill(frontier.high_water)
            assert frontier.should_spill(frontier.high_water + 1)
        finally:
            frontier.close()

    def test_spill_refill_round_trip(self):
        frontier = storage.SpillFrontier(1, n=8)
        try:
            frames = [(0b111, 0b1), (0b1010, 0b10)]
            assert frontier.spill(frames) == 2
            assert frontier.pending == 2
            assert frontier.refill() == frames
            assert frontier.pending == 0
            assert frontier.spilled_frames == 2
            assert frontier.spill_bytes > 0
        finally:
            frontier.close()


# ----------------------------------------------------------------------
# The spill oracle
# ----------------------------------------------------------------------
class TestSpillOracle:
    def test_budgeted_run_spills_and_matches_unbudgeted(self):
        """Acceptance: a graph whose frontier dwarfs the budget completes
        under a 1-byte soft budget with bit-identical cliques and stats,
        spilling pending frames to disk along the way."""
        graph = _many_component_graph()
        expected = enumerate_parallel(graph, 1.5, 1, workers=1)
        budgeted = enumerate_parallel(
            graph, 1.5, 1, workers=1, memory_budget_bytes=1
        )
        assert _fingerprint(budgeted) == _fingerprint(expected)
        assert not budgeted.interrupted
        assert budgeted.parallel["memory_budget_bytes"] == 1
        assert budgeted.parallel["spilled_frames"] > 0
        assert budgeted.parallel["spill_bytes"] > 0
        assert expected.parallel["spilled_frames"] == 0

    def test_budget_env_variable_enables_spilling(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1")
        graph = _many_component_graph(components=40)
        result = enumerate_parallel(graph, 1.5, 1, workers=1)
        assert result.parallel["memory_budget_bytes"] == 1
        assert result.parallel["spilled_frames"] > 0

    def test_spill_dir_is_honoured_and_cleaned(self, tmp_path):
        graph = _many_component_graph(components=40)
        result = enumerate_parallel(
            graph, 1.5, 1, workers=1, memory_budget_bytes=1, spill_dir=str(tmp_path)
        )
        assert result.parallel["spilled_frames"] > 0
        assert list(tmp_path.iterdir()) == []  # spill file removed on close

    def test_no_temp_residue_after_budgeted_run(self):
        graph = _many_component_graph(components=40)
        tmp_dir = tempfile.gettempdir()
        before = set(os.listdir(tmp_dir))
        enumerate_parallel(graph, 1.5, 1, workers=1, memory_budget_bytes=1)
        gc.collect()
        leaked = {
            name
            for name in set(os.listdir(tmp_dir)) - before
            if name.startswith((storage.MMAP_PREFIX, storage.SPILL_PREFIX))
        }
        assert not leaked

    def test_generous_budget_never_spills(self):
        graph = _search_graph(seed=5, n=80)
        result = enumerate_parallel(
            graph, 1.5, 1, workers=1, memory_budget_bytes=1 << 40
        )
        assert result.parallel["memory_budget_bytes"] == 1 << 40
        assert result.parallel["spilled_frames"] == 0

    def test_budgeted_multi_worker_run_matches(self):
        graph = _many_component_graph(components=30)
        expected = enumerate_parallel(graph, 1.5, 1, workers=1)
        budgeted = enumerate_parallel(
            graph, 1.5, 1, workers=2, memory_budget_bytes=1, transport="mmap"
        )
        assert _fingerprint(budgeted) == _fingerprint(expected)
