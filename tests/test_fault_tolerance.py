"""Fault-injection tests for the resilient parallel enumeration stack.

The contract under test: worker crashes, poisoned frames, wall-clock
deadlines, memory ceilings, shared-memory starvation and spawn failures
must never corrupt results — a disturbed run either produces the exact
sequential answer (crash retry, degradation) or an honestly-labelled
partial one (``interrupted``), and no run may leak ``/dev/shm``
segments or worker processes. Worker counts honour the
``REPRO_FAULT_WORKERS`` environment variable (default 2) so CI can
stress wider pools.
"""

import gc
import multiprocessing
import os
import random
import tempfile
import time
from multiprocessing import shared_memory
from pathlib import Path

import pytest

from repro.core import MSCE, AlphaK, enumerate_parallel
from repro.exceptions import SharedMemoryError, WorkerCrashError
from repro.fastpath import compile_graph
from repro.fastpath import storage
from repro.fastpath.shared import SharedCompiledGraph
from repro.graphs import SignedGraph
from repro.testing import FaultPlan, injected
from tests.conftest import make_random_signed_graph

WORKERS = int(os.environ.get("REPRO_FAULT_WORKERS", "2"))

SHM_DIR = Path("/dev/shm")

#: Split thresholds small enough that the test graphs actually ship
#: frames to worker processes (mirrors tests/test_parallel.py).
SPLIT_KNOBS = dict(small_component=8, split_component=24, task_budget=20)


def _fault_graph(seed: int, components: int = 3) -> SignedGraph:
    """Disjoint random blobs big enough to seed several worker tasks."""
    rng = random.Random(seed)
    graph = SignedGraph()
    offset = 0
    for _ in range(components):
        blob = make_random_signed_graph(
            rng, n_range=(30, 40), edge_probability_range=(0.3, 0.5)
        )
        for u, v, sign in blob.edges():
            graph.add_edge(u + offset, v + offset, sign)
        offset += 100
    return graph


def _fingerprint(result):
    """Everything that must survive injected faults bit-identically."""
    return (
        [(c.nodes, c.positive_edges, c.negative_edges) for c in result.cliques],
        result.stats.as_dict(),
    )


@pytest.fixture(autouse=True)
def _no_leaks():
    """Every test must leave /dev/shm, the tempdir and the process table clean.

    The tempdir check covers the storage tier's crash-guarded artifacts
    (``repro-mmap-*`` transport files, ``repro-spill-*`` frame stores) —
    the on-disk mirror of the /dev/shm guarantee.
    """
    tmp_dir = Path(tempfile.gettempdir())
    before = set(os.listdir(SHM_DIR)) if SHM_DIR.exists() else set()
    tmp_before = set(os.listdir(tmp_dir))
    yield
    gc.collect()
    if SHM_DIR.exists():
        leaked = {
            name
            for name in set(os.listdir(SHM_DIR)) - before
            if name.startswith("psm_")
        }
        assert not leaked, f"leaked shared-memory segments: {leaked}"
    leaked_files = {
        name
        for name in set(os.listdir(tmp_dir)) - tmp_before
        if name.startswith((storage.MMAP_PREFIX, storage.SPILL_PREFIX))
    }
    assert not leaked_files, f"leaked storage temp artifacts: {leaked_files}"
    # Scheduler children are joined/terminated by every exit path; give
    # freshly-terminated ones a moment to be reaped.
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not multiprocessing.active_children()


class TestWorkerCrashRecovery:
    def test_killed_worker_changes_nothing(self):
        """Acceptance: a worker killed mid-run yields the same clique set
        and SearchStats as an undisturbed sequential run."""
        graph = _fault_graph(seed=13)
        expected = _fingerprint(MSCE(graph, AlphaK(1.5, 1)).enumerate_all())
        with injected(FaultPlan(kill_at_frame={0: 5})):
            result = enumerate_parallel(graph, 1.5, 1, workers=WORKERS, **SPLIT_KNOBS)
        assert _fingerprint(result) == expected
        report = result.parallel
        assert report["workers_lost"] >= 1
        assert report["respawns"] >= 1
        assert report["retries"] >= 1
        assert report["quarantined_frames"] == 0
        assert not result.interrupted
        assert report["degraded"] is None
        # Retry accounting: every task still completes exactly once.
        assert report["tasks_completed"] == (
            report["tasks_seeded"] + report["frames_resplit"]
        )

    def test_multiple_killed_workers_change_nothing(self):
        graph = _fault_graph(seed=17)
        expected = _fingerprint(MSCE(graph, AlphaK(1.5, 1)).enumerate_all())
        kills = {slot: 3 + slot for slot in range(min(WORKERS, 2))}
        with injected(FaultPlan(kill_at_frame=kills)):
            result = enumerate_parallel(graph, 1.5, 1, workers=WORKERS, **SPLIT_KNOBS)
        assert _fingerprint(result) == expected
        assert result.parallel["workers_lost"] >= len(kills)

    def test_poisoned_frame_is_quarantined_not_retried_forever(self):
        graph = _fault_graph(seed=13)
        sequential = {c.nodes for c in MSCE(graph, AlphaK(1.5, 1)).enumerate_all()}
        with injected(FaultPlan(poison_tasks=frozenset({0}))):
            result = enumerate_parallel(graph, 1.5, 1, workers=WORKERS, **SPLIT_KNOBS)
        report = result.parallel
        assert report["tasks_seeded"] >= 1
        assert report["quarantined_frames"] == 1
        # Default budget: 2 retries -> 3 attempts total, then quarantine.
        assert report["retries"] == 2
        assert not result.interrupted
        # Everything outside the quarantined subtree is still found, and
        # nothing bogus is invented.
        assert {c.nodes for c in result} <= sequential


class TestResourceGuards:
    def test_zero_time_limit_returns_partial_result_not_raise(self):
        graph = _fault_graph(seed=13)
        result = enumerate_parallel(
            graph, 1.5, 1, workers=WORKERS, time_limit=0, **SPLIT_KNOBS
        )
        assert result.interrupted
        assert result.interrupted_reason == "deadline"
        assert result.timed_out
        assert result.parallel["interrupted"] is True
        assert result.incomplete_frames > 0
        assert result.parallel["incomplete_frames"] == result.incomplete_frames

    def test_mid_run_deadline_yields_subset(self):
        graph = _fault_graph(seed=19)
        sequential = {c.nodes for c in MSCE(graph, AlphaK(1.5, 1)).enumerate_all()}
        with injected(FaultPlan(message_delay=0.02)):
            result = enumerate_parallel(
                graph, 1.5, 1, workers=WORKERS, time_limit=0.4, **SPLIT_KNOBS
            )
        assert {c.nodes for c in result} <= sequential
        if not result.interrupted:
            assert {c.nodes for c in result} == sequential

    def test_memory_ceiling_interrupts_sequential_enumerator(self):
        graph = _fault_graph(seed=13, components=1)
        result = MSCE(graph, AlphaK(1.5, 1), max_memory_bytes=1).enumerate_all()
        assert result.interrupted
        assert result.interrupted_reason == "memory"
        assert not result.timed_out

    def test_memory_ceiling_interrupts_parallel_enumerator(self):
        graph = _fault_graph(seed=13)
        result = enumerate_parallel(
            graph, 1.5, 1, workers=WORKERS, max_memory_bytes=1, **SPLIT_KNOBS
        )
        assert result.interrupted
        assert result.interrupted_reason == "memory"
        assert not result.timed_out


class TestGracefulDegradation:
    def test_shared_memory_starvation_falls_back_inline(self):
        graph = _fault_graph(seed=13)
        expected = _fingerprint(MSCE(graph, AlphaK(1.5, 1)).enumerate_all())
        with injected(FaultPlan(fail_shm_create=True)):
            result = enumerate_parallel(graph, 1.5, 1, workers=WORKERS, **SPLIT_KNOBS)
        assert _fingerprint(result) == expected
        assert result.parallel["degraded"].startswith("shared memory unavailable")

    def test_worker_spawn_failure_falls_back_inline(self):
        graph = _fault_graph(seed=13)
        expected = _fingerprint(MSCE(graph, AlphaK(1.5, 1)).enumerate_all())
        with injected(FaultPlan(fail_worker_spawn=True)):
            result = enumerate_parallel(graph, 1.5, 1, workers=WORKERS, **SPLIT_KNOBS)
        assert _fingerprint(result) == expected
        assert result.parallel["degraded"] == "worker spawn failed"
        assert result.parallel["spawn_failures"] == WORKERS
        assert not result.interrupted

    def test_single_worker_records_fallback_reason(self):
        graph = _fault_graph(seed=13)
        result = enumerate_parallel(graph, 1.5, 1, workers=1, **SPLIT_KNOBS)
        assert result.parallel["degraded"] == "workers<=1"

    def test_strict_mode_raises_on_spawn_failure(self):
        graph = _fault_graph(seed=13)
        with injected(FaultPlan(fail_worker_spawn=True)):
            with pytest.raises(WorkerCrashError, match="unfinished frames"):
                enumerate_parallel(
                    graph, 1.5, 1, workers=WORKERS, strict=True, **SPLIT_KNOBS
                )

    def test_strict_mode_raises_on_shm_failure(self):
        graph = _fault_graph(seed=13)
        with injected(FaultPlan(fail_shm_create=True)):
            with pytest.raises(
                SharedMemoryError,
                match="shared-memory segment|mmap graph artifact",
            ):
                enumerate_parallel(
                    graph, 1.5, 1, workers=WORKERS, strict=True, **SPLIT_KNOBS
                )


class TestKeyboardInterrupt:
    def test_interrupt_reaps_children_and_unlinks_shm(self):
        """Ctrl-C mid-enumeration: children terminated, segment unlinked,
        exception re-raised (leak checks in the autouse fixture)."""
        graph = _fault_graph(seed=13)
        with injected(FaultPlan(interrupt_parent_after=1)):
            with pytest.raises(KeyboardInterrupt):
                enumerate_parallel(graph, 1.5, 1, workers=WORKERS, **SPLIT_KNOBS)


class TestArgumentValidation:
    @pytest.mark.parametrize(
        "kwargs, name",
        [
            ({"workers": 0}, "workers"),
            ({"workers": -2}, "workers"),
            ({"workers": 1.5}, "workers"),
            ({"workers": True}, "workers"),
            ({"task_budget": 0}, "task_budget"),
            ({"task_budget": -1}, "task_budget"),
            ({"max_offload": 0}, "max_offload"),
            ({"max_offload": "16"}, "max_offload"),
            ({"frame_retries": -1}, "frame_retries"),
            ({"max_respawns": -1}, "max_respawns"),
        ],
    )
    def test_rejects_bad_arguments_naming_them(self, paper_graph, kwargs, name):
        with pytest.raises(ValueError, match=name):
            enumerate_parallel(paper_graph, 3, 1, **kwargs)


class TestSharedMemoryCrashGuard:
    def test_leaked_owner_handle_unlinks_segment_on_collection(self):
        """A parent that crashes between create() and unlink() must not
        leave the segment behind: the finalizer reclaims it."""
        compiled = compile_graph(
            make_random_signed_graph(random.Random(5), n_range=(8, 12))
        )
        shared = SharedCompiledGraph.create(compiled, transport="shm")
        name = shared.name
        # Simulate the crash: the handle is dropped without close/unlink.
        del shared
        gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestStorageCrashGuard:
    def test_leaked_mmap_transport_owner_removes_file_on_collection(self):
        """The mmap-transport twin of the shm guard: a dropped owner
        handle must reclaim the on-disk graph artifact."""
        compiled = compile_graph(
            make_random_signed_graph(random.Random(5), n_range=(8, 12))
        )
        shared = SharedCompiledGraph.create(compiled, transport="mmap")
        path = shared.name
        assert os.path.exists(path)
        del shared
        gc.collect()
        assert not os.path.exists(path)

    def test_leaked_frame_store_removes_spill_file_on_collection(self):
        store = storage.FrameStore()
        store.push_batch([(0b1011, 0b1), (0b100, 0b10)])
        path = store.path
        assert os.path.exists(path)
        del store
        gc.collect()
        assert not os.path.exists(path)

    def test_interrupted_budgeted_mmap_run_leaves_no_artifacts(self):
        """Ctrl-C mid-run with spilling active and the mmap transport:
        the autouse fixture asserts no repro-mmap-*/repro-spill-* files
        survive."""
        graph = _fault_graph(seed=13)
        with injected(FaultPlan(interrupt_parent_after=1)):
            with pytest.raises(KeyboardInterrupt):
                enumerate_parallel(
                    graph,
                    1.5,
                    1,
                    workers=WORKERS,
                    transport="mmap",
                    memory_budget_bytes=1,
                    **SPLIT_KNOBS,
                )

    def test_mmap_transport_starvation_falls_back_inline(self):
        """fail_shm_create starves the mmap transport too (same injection
        point); the run degrades inline with identical results."""
        graph = _fault_graph(seed=13)
        expected = _fingerprint(MSCE(graph, AlphaK(1.5, 1)).enumerate_all())
        with injected(FaultPlan(fail_shm_create=True)):
            result = enumerate_parallel(
                graph, 1.5, 1, workers=WORKERS, transport="mmap", **SPLIT_KNOBS
            )
        assert _fingerprint(result) == expected
        assert result.parallel["degraded"].startswith("shared memory unavailable")
