"""Backend resolver semantics and per-tier end-to-end oracles.

The kernel-tier resolver (:mod:`repro.fastpath.backend`) is the single
funnel every entry point goes through, so its precedence rules
(kwarg > ``REPRO_BACKEND`` env > default) and its silent degradation
ladder (native -> vectorized -> python) are pinned here. The oracle
classes then re-run the existing parallel and serve differential
contracts under every tier: same cliques, same ``SearchStats``,
regardless of which backend — or how many workers — produced them.
"""

import random

import pytest

from repro.core import AlphaK, MSCE, enumerate_parallel
from repro.exceptions import ParameterError
from repro.fastpath import backend as backend_mod
from repro.fastpath import compile_graph
from repro.fastpath.backend import (
    BACKENDS,
    available_backends,
    default_backend,
    resolve_backend,
)
from repro.generators import gnp_signed
from repro.graphs import SignedGraph
from repro.serve import SignedCliqueEngine
from tests.conftest import make_random_signed_graph


class TestResolver:
    def test_backend_names_are_the_ladder(self):
        assert BACKENDS == ("python", "vectorized", "native")

    def test_default_prefers_vectorized_with_numpy(self):
        expected = "vectorized" if backend_mod.HAS_NUMPY else "python"
        assert default_backend() == expected
        assert resolve_backend(None) in BACKENDS

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert resolve_backend(None) == "python"

    def test_kwarg_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        expected = "vectorized" if backend_mod.HAS_NUMPY else "python"
        assert resolve_backend("vectorized") == expected

    def test_unknown_kwarg_raises(self):
        with pytest.raises(ParameterError):
            resolve_backend("cuda")

    def test_unknown_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "gpu")
        with pytest.raises(ParameterError):
            resolve_backend(None)

    def test_native_degrades_without_numba(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "HAS_NUMBA", False)
        expected = "vectorized" if backend_mod.HAS_NUMPY else "python"
        assert resolve_backend("native") == expected

    def test_everything_degrades_without_numpy(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "HAS_NUMPY", False)
        assert default_backend() == "python"
        assert resolve_backend("vectorized") == "python"
        assert resolve_backend("native") == "python"
        assert available_backends() == ("python",)

    def test_available_backends_ladder(self):
        tiers = available_backends()
        assert tiers[0] == "python"
        assert set(tiers) <= set(BACKENDS)
        # Requesting any *named* tier always resolves to an available one.
        for name in BACKENDS:
            assert resolve_backend(name) in tiers

    def test_native_self_check_gates_the_tier(self, monkeypatch):
        if not (backend_mod.HAS_NUMPY and backend_mod.HAS_NUMBA):
            pytest.skip("native tier not importable here")
        from repro.fastpath import native

        monkeypatch.setattr(native, "self_check", lambda: False)
        assert resolve_backend("native") == "vectorized"


def _multi_component_graph(seed: int, components: int = 3) -> SignedGraph:
    """Disjoint random blobs — enough parallel structure to fan out."""
    rng = random.Random(seed)
    graph = SignedGraph()
    offset = 0
    for _ in range(components):
        blob = make_random_signed_graph(
            rng, n_range=(25, 35), edge_probability_range=(0.3, 0.5)
        )
        for u, v, sign in blob.edges():
            graph.add_edge(u + offset, v + offset, sign)
        offset += 100
    return graph


def _fingerprint(result):
    return (
        [(c.nodes, c.positive_edges, c.negative_edges) for c in result.cliques],
        result.stats.as_dict(),
    )


class TestParallelBackendOracle:
    """enumerate_parallel under every tier x workers in {1, 4}."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_matches_python_sequential_oracle(self, backend, workers):
        graph = _multi_component_graph(seed=23)
        oracle = MSCE(graph, AlphaK(2, 1), backend="python").enumerate_all()
        result = enumerate_parallel(graph, 2, 1, workers=workers, backend=backend)
        assert _fingerprint(result) == _fingerprint(oracle)
        assert result.parallel["backend"] == resolve_backend(backend)
        assert result.stats.backend == resolve_backend(backend)

    def test_env_var_reaches_parallel_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        graph = _multi_component_graph(seed=23)
        result = enumerate_parallel(graph, 2, 1, workers=2)
        assert result.parallel["backend"] == "python"


class TestServeBackendOracle:
    """The serving engine must answer identically under every tier."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_engine_matches_python_oracle(self, backend):
        graph = gnp_signed(36, 0.3, negative_fraction=0.25, seed=11)
        oracle = SignedCliqueEngine(graph, backend="python")
        engine = SignedCliqueEngine(graph, backend=backend)
        assert engine.cache_info()["backend"] == resolve_backend(backend)
        for alpha, k in ((2.0, 1), (2.0, 2), (3.0, 2)):
            want = oracle.enumerate_with_stats(alpha, k)
            got = engine.enumerate_with_stats(alpha, k)
            assert got.cliques == want.cliques, backend
            assert got.stats == want.stats, backend
        top_want = oracle.top_r_with_stats(2.0, 1, 3)
        top_got = engine.top_r_with_stats(2.0, 1, 3)
        assert top_got.cliques == top_want.cliques

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_grid_report_stamps_backend(self, backend):
        graph = gnp_signed(30, 0.3, negative_fraction=0.25, seed=7)
        engine = SignedCliqueEngine(graph, backend=backend)
        grid = engine.run_grid([2.0, 3.0], [1], workers=2)
        assert grid.report["backend"] == resolve_backend(backend)
        oracle = SignedCliqueEngine(graph, backend="python")
        for params, result in grid.items():
            reference = oracle.enumerate_with_stats(params.alpha, params.k)
            assert result.cliques == reference.cliques
            assert result.stats == reference.stats
