"""Property-based cross-validation of the full pipeline (hypothesis).

The central correctness argument of this reproduction: on arbitrary
small signed graphs and arbitrary (alpha, k), MSCE (all selection
strategies), the reference enumerator, and brute force all agree
exactly, and MCBasic/MCNew compute the same MCCore.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MSCE,
    AlphaK,
    brute_force_maximal,
    mccore_basic,
    mccore_new,
    reference_enumerate,
)
from repro.graphs import SignedGraph

graph_specs = st.integers(min_value=2, max_value=9).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.sampled_from([0, 0, 1, 1, 1, -1]),  # biased toward edges, mostly positive
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        ),
    )
)

param_specs = st.tuples(
    st.sampled_from([0, 1, 1.5, 2, 3]),
    st.integers(min_value=0, max_value=3),
)


def _build(spec) -> SignedGraph:
    n, signs = spec
    graph = SignedGraph(nodes=range(n))
    for (u, v), sign in zip(itertools.combinations(range(n), 2), signs):
        if sign:
            graph.add_edge(u, v, sign)
    return graph


@settings(max_examples=120, deadline=None)
@given(graph_specs, param_specs)
def test_msce_matches_brute_force(spec, param_spec):
    graph = _build(spec)
    alpha, k = param_spec
    params = AlphaK(alpha, k)
    truth = {c.nodes for c in brute_force_maximal(graph, params)}
    result = MSCE(graph, params, audit=True).enumerate_all()
    assert {c.nodes for c in result.cliques} == truth


@settings(max_examples=60, deadline=None)
@given(graph_specs, param_specs, st.sampled_from(["random", "first"]))
def test_other_strategies_match_brute_force(spec, param_spec, selection):
    graph = _build(spec)
    alpha, k = param_spec
    params = AlphaK(alpha, k)
    truth = {c.nodes for c in brute_force_maximal(graph, params)}
    result = MSCE(graph, params, selection=selection, audit=True).enumerate_all()
    assert {c.nodes for c in result.cliques} == truth


@settings(max_examples=80, deadline=None)
@given(graph_specs, param_specs)
def test_mcbasic_equals_mcnew(spec, param_spec):
    graph = _build(spec)
    alpha, k = param_spec
    params = AlphaK(alpha, k)
    assert mccore_basic(graph, params) == mccore_new(graph, params)


@settings(max_examples=40, deadline=None)
@given(graph_specs, param_specs)
def test_reference_enumerator_matches_brute_force(spec, param_spec):
    graph = _build(spec)
    alpha, k = param_spec
    params = AlphaK(alpha, k)
    truth = {c.nodes for c in brute_force_maximal(graph, params)}
    assert {c.nodes for c in reference_enumerate(graph, params)} == truth


@settings(max_examples=60, deadline=None)
@given(graph_specs, param_specs)
def test_every_result_satisfies_all_constraints(spec, param_spec):
    graph = _build(spec)
    alpha, k = param_spec
    params = AlphaK(alpha, k)
    for clique in MSCE(graph, params).enumerate_all().cliques:
        clique.verify(graph)
        assert clique.size >= params.min_clique_size


@settings(max_examples=60, deadline=None)
@given(graph_specs, param_specs)
def test_paper_maxtest_is_subset_of_exact(spec, param_spec):
    # The paper-style MaxTest can only under-report (soundness direction
    # proven in the maxtest module); its output must be a subset.
    graph = _build(spec)
    alpha, k = param_spec
    params = AlphaK(alpha, k)
    exact = {c.nodes for c in MSCE(graph, params).enumerate_all().cliques}
    paper = {c.nodes for c in MSCE(graph, params, maxtest="paper").enumerate_all().cliques}
    assert paper <= exact
