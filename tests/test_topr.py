"""Unit tests for the top-r search mode (Section IV, 'Finding the top-r results')."""

import random

import pytest

from repro.core import MSCE, AlphaK, top_r_signed_cliques
from repro.exceptions import ParameterError
from tests.conftest import make_random_signed_graph


class TestTopRSemantics:
    def test_matches_prefix_of_full_enumeration(self):
        # Top-r must return the r largest cliques of the full answer
        # (sizes must match; ties may resolve to different but
        # equally-sized cliques).
        rng = random.Random(61)
        for _ in range(25):
            graph = make_random_signed_graph(rng, n_range=(8, 13))
            params = AlphaK(rng.choice([1, 1.5, 2]), rng.choice([0, 1, 2]))
            full = MSCE(graph, params).enumerate_all().cliques
            for r in (1, 3, 10):
                top = MSCE(graph, params).top_r(r).cliques
                assert len(top) == min(r, len(full))
                assert [c.size for c in top] == [c.size for c in full[: len(top)]]
                # Each reported clique really is maximal (appears in full).
                full_sets = {c.nodes for c in full}
                assert all(c.nodes in full_sets for c in top)

    def test_r_larger_than_population(self, paper_graph):
        top = MSCE(paper_graph, AlphaK(3, 1)).top_r(100).cliques
        assert len(top) == 1

    def test_invalid_r(self, paper_graph):
        with pytest.raises(ParameterError):
            MSCE(paper_graph, AlphaK(3, 1)).top_r(0)

    def test_convenience_wrapper(self, paper_graph):
        top = top_r_signed_cliques(paper_graph, alpha=3, k=1, r=1)
        assert [sorted(c.nodes) for c in top] == [[1, 2, 3, 4, 5]]


class TestTopRPruning:
    def test_prunes_search_space(self):
        # The size cutoff should make top-1 explore no more than the
        # full enumeration does.
        rng = random.Random(62)
        pruned_somewhere = False
        for _ in range(20):
            graph = make_random_signed_graph(
                rng, n_range=(10, 13), edge_probability_range=(0.6, 0.9)
            )
            params = AlphaK(1.5, 1)
            full = MSCE(graph, params).enumerate_all()
            top = MSCE(graph, params).top_r(1)
            assert top.stats.recursions <= full.stats.recursions
            if top.stats.topr_prunes > 0:
                pruned_somewhere = True
        assert pruned_somewhere
