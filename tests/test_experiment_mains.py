"""Tests for the experiment entry points (__main__ runners)."""

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.experiments.report import main as report_main


class TestExperimentsMain:
    def test_runs_selected_drivers(self, capsys):
        assert experiments_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_list_driver_output(self, capsys):
        assert experiments_main(["fig6_mechanism"]) == 0
        assert "mechanism" in capsys.readouterr().out

    def test_unknown_driver_fails(self, capsys):
        assert experiments_main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown drivers" in err and "available" in err


class TestReportMain:
    def test_writes_file(self, tmp_path, capsys):
        target = tmp_path / "out.md"
        assert report_main([str(target), "table1"]) == 0
        assert target.exists()
        assert "wrote" in capsys.readouterr().out
