"""Tests for NMI, the omega index, and coverage."""

import pytest

from repro.exceptions import ParameterError
from repro.metrics.nmi import coverage, nmi, omega_index


PARTITION = [{1, 2, 3}, {4, 5}, {6}]


class TestNmi:
    def test_identical_partitions(self):
        assert nmi(PARTITION, PARTITION) == pytest.approx(1.0)

    def test_single_block_identical(self):
        assert nmi([{1, 2, 3}], [{1, 2, 3}]) == pytest.approx(1.0)

    def test_orthogonal_partitions(self):
        # Rows vs columns of a 2x2 grid: zero mutual information.
        rows = [{0, 1}, {2, 3}]
        cols = [{0, 2}, {1, 3}]
        assert nmi(rows, cols) == pytest.approx(0.0)

    def test_partial_agreement_between_bounds(self):
        a = [{1, 2, 3}, {4, 5, 6}]
        b = [{1, 2, 4}, {3, 5, 6}]
        value = nmi(a, b)
        assert 0.0 < value < 1.0

    def test_symmetry(self):
        a = [{1, 2}, {3, 4, 5}]
        b = [{1, 2, 3}, {4, 5}]
        assert nmi(a, b) == pytest.approx(nmi(b, a))

    def test_overlapping_blocks_rejected(self):
        with pytest.raises(ParameterError):
            nmi([{1, 2}, {2, 3}], [{1, 2, 3}])

    def test_mismatched_universe_rejected(self):
        with pytest.raises(ParameterError):
            nmi([{1, 2}], [{1, 2, 3}])

    def test_empty_inputs(self):
        assert nmi([], []) == 1.0


class TestOmegaIndex:
    def test_identical_covers(self):
        cover = [{1, 2, 3}, {3, 4}]
        assert omega_index(cover, cover, universe=range(1, 6)) == pytest.approx(1.0)

    def test_handles_overlap(self):
        a = [{1, 2, 3}, {3, 4, 5}]
        b = [{1, 2, 3}, {4, 5}]
        value = omega_index(a, b, universe=range(1, 6))
        assert -1.0 <= value <= 1.0

    def test_disagreement_scores_low(self):
        a = [{1, 2}, {3, 4}]
        b = [{1, 3}, {2, 4}]
        assert omega_index(a, b, universe=range(1, 5)) < omega_index(
            a, a, universe=range(1, 5)
        )

    def test_empty_universe(self):
        assert omega_index([], [], universe=[]) == 1.0

    def test_single_node(self):
        assert omega_index([{1}], [{1}], universe=[1]) == 1.0


class TestCoverage:
    def test_full_and_partial(self):
        assert coverage([{1, 2}, {3}], universe={1, 2, 3}) == 1.0
        assert coverage([{1}], universe={1, 2}) == 0.5
        assert coverage([], universe={1}) == 0.0
        assert coverage([], universe=set()) == 1.0
