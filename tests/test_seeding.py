"""Differential battery: warm-started top-r must be answer-invariant.

The soundness contract of :mod:`repro.heuristics` is that every
incumbent preloaded into the top-r size heap is a genuine maximal
reportable clique of the active model. Then ``heap[0]`` is always a
lower bound on the true r-th largest size, so the cutoff prune can
only discard subtrees the unseeded search would also have found
fruitless *later* — never a top-r answer. These tests prove the
contract differentially:

* seeded and unseeded runs are **bit-identical** (same cliques, same
  order, same edge counts) across worker counts {1, 2, 4}, kernel
  backends, constraint models and warm-start strategies;
* a seeded run never explores **more** of the search tree
  (``recursions`` is monotone; ``topr_prunes`` deliberately is not);
* every incumbent a strategy produces is feasible, reportable and
  maximal under the active model (hypothesis property);
* anything less than a valid incumbent set is rejected with
  ``ParameterError`` before the search starts.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MSCE, AlphaK, enumerate_parallel
from repro.core.api import top_r_signed_cliques
from repro.exceptions import ParameterError
from repro.fastpath import compile_graph
from repro.fastpath.backend import BACKENDS
from repro.graphs import SignedGraph
from repro.heuristics import (
    WARM_START_STRATEGIES,
    prepare_warm_start,
    validate_warm_start,
    warm_start_cliques,
)
from repro.models import make_constraint
from tests.conftest import PAPER_EDGES, make_random_signed_graph

MODELS_UNDER_TEST = ("msce", "balanced")

#: Per-model parameters: MSCE reads (alpha, k); the balanced model
#: reads k as the minimum side size (tau).
PARAMS = {"msce": AlphaK(2, 1), "balanced": AlphaK(1, 1)}


def _battery_graph(seed: int = 29, blobs: int = 3) -> SignedGraph:
    """Disjoint random blobs — forces real task shipping when split."""
    rng = random.Random(seed)
    graph = SignedGraph()
    offset = 0
    for _ in range(blobs):
        blob = make_random_signed_graph(
            rng,
            n_range=(10, 14),
            edge_probability_range=(0.4, 0.7),
            negative_probability_range=(0.1, 0.4),
        )
        for u, v, sign in blob.edges():
            graph.add_edge(u + offset, v + offset, sign)
        offset += 100
    return graph


def _rows(result):
    """Everything that must be bit-identical between seeded/unseeded."""
    return [(c.nodes, c.positive_edges, c.negative_edges) for c in result.cliques]


# ---------------------------------------------------------------------------
# Parallel battery: workers x models x r, real task shipping
# ---------------------------------------------------------------------------


class TestParallelDifferential:
    @pytest.mark.parametrize("model", MODELS_UNDER_TEST)
    @pytest.mark.parametrize("r", (1, 3))
    def test_seeded_matches_unseeded_across_workers(self, model, r):
        graph = _battery_graph()
        params = PARAMS[model]
        kwargs = dict(small_component=2, split_component=8, model=model)
        reference = None
        for workers in (1, 2, 4):
            unseeded = enumerate_parallel(
                graph, params.alpha, params.k, workers=workers, top_r=r, **kwargs
            )
            seeded = enumerate_parallel(
                graph,
                params.alpha,
                params.k,
                workers=workers,
                top_r=r,
                warm_start="portfolio",
                **kwargs,
            )
            assert _rows(seeded) == _rows(unseeded)
            assert seeded.stats.recursions <= unseeded.stats.recursions
            assert seeded.stats.maximal_found == unseeded.stats.maximal_found
            assert seeded.parallel["seeded"]["strategy"] == "portfolio"
            assert "seeded" not in unseeded.parallel
            if reference is None:
                reference = _rows(unseeded)
            # The answer is also invariant across worker counts.
            assert _rows(unseeded) == reference

    def test_parallel_matches_sequential_seeded(self):
        graph = _battery_graph(seed=43)
        params = PARAMS["msce"]
        sequential = MSCE(graph, params, model="msce").top_r(3)
        for workers in (1, 2):
            seeded = enumerate_parallel(
                graph,
                params.alpha,
                params.k,
                workers=workers,
                top_r=3,
                warm_start="spectral",
                small_component=2,
                split_component=8,
                model="msce",
            )
            assert _rows(seeded) == _rows(sequential)


# ---------------------------------------------------------------------------
# Sequential battery: backends x models x strategies
# ---------------------------------------------------------------------------


class TestSequentialDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("model", MODELS_UNDER_TEST)
    def test_backends_bit_identical(self, backend, model):
        graph = _battery_graph(seed=31, blobs=1)
        compiled = compile_graph(graph)
        params = PARAMS[model]
        for r in (1, 3):
            unseeded = MSCE(compiled, params, backend=backend, model=model).top_r(r)
            for strategy in WARM_START_STRATEGIES:
                seeded = MSCE(compiled, params, backend=backend, model=model).top_r(
                    r, warm_start=strategy
                )
                assert _rows(seeded) == _rows(unseeded)
                assert seeded.stats.recursions <= unseeded.stats.recursions
                assert seeded.parallel["seeded"]["strategy"] == strategy

    def test_paper_graph_exact_answer(self, paper_graph):
        # alpha=3, k=1: the unique maximal (3,1)-clique is {v1..v5}.
        for strategy in WARM_START_STRATEGIES:
            result = MSCE(paper_graph, AlphaK(3, 1)).top_r(1, warm_start=strategy)
            assert [set(c.nodes) for c in result.cliques] == [{1, 2, 3, 4, 5}]

    def test_explicit_incumbents_accepted(self, paper_graph):
        params = AlphaK(2, 1)
        truth = MSCE(paper_graph, params).top_r(3)
        # As SignedClique objects and as bare node collections.
        for warm in (truth.cliques, [set(c.nodes) for c in truth.cliques]):
            seeded = MSCE(paper_graph, params).top_r(3, warm_start=warm)
            assert _rows(seeded) == _rows(truth)
            assert seeded.stats.recursions <= truth.stats.recursions

    def test_api_wrapper_threads_warm_start(self, paper_graph):
        unseeded = top_r_signed_cliques(paper_graph, 2, 1, r=2)
        seeded = top_r_signed_cliques(paper_graph, 2, 1, r=2, warm_start="portfolio")
        assert [c.nodes for c in seeded] == [c.nodes for c in unseeded]

    def test_audit_mode_tolerates_refound_incumbents(self, paper_graph):
        params = AlphaK(2, 1)
        unseeded = MSCE(paper_graph, params).top_r(2)
        seeded = MSCE(paper_graph, params, audit=True).top_r(2, warm_start="portfolio")
        assert _rows(seeded) == _rows(unseeded)


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------


class TestProperties:
    @given(seed=st.integers(0, 10**6), model=st.sampled_from(MODELS_UNDER_TEST))
    @settings(max_examples=25, deadline=None)
    def test_portfolio_incumbents_are_sound(self, seed, model):
        """Every incumbent is a distinct maximal reportable model clique."""
        graph = make_random_signed_graph(random.Random(seed))
        params = PARAMS[model]
        warm = warm_start_cliques(graph, params, 3, model=model)
        constraint = make_constraint(model, params)
        maxtest = constraint.make_maxtest("exact")
        seen = set()
        for clique in warm.cliques:
            assert clique.nodes not in seen
            seen.add(clique.nodes)
            members = set(clique.nodes)
            assert constraint.feasible(graph, members)
            assert constraint.reportable(graph, members)
            assert maxtest(graph, members, params)

    @given(
        seed=st.integers(0, 10**6),
        model=st.sampled_from(MODELS_UNDER_TEST),
        r=st.sampled_from((1, 2, 3)),
        strategy=st.sampled_from(WARM_START_STRATEGIES),
    )
    @settings(max_examples=30, deadline=None)
    def test_seeded_topr_is_answer_invariant(self, seed, model, r, strategy):
        graph = make_random_signed_graph(random.Random(seed))
        params = PARAMS[model]
        unseeded = MSCE(graph, params, model=model).top_r(r)
        seeded = MSCE(graph, params, model=model).top_r(r, warm_start=strategy)
        assert _rows(seeded) == _rows(unseeded)
        assert seeded.stats.recursions <= unseeded.stats.recursions


# ---------------------------------------------------------------------------
# Rejection: invalid warm starts never reach the search
# ---------------------------------------------------------------------------


class TestValidation:
    @pytest.fixture
    def graph(self):
        return SignedGraph(PAPER_EDGES)

    def test_unknown_strategy_rejected(self, graph):
        with pytest.raises(ParameterError):
            MSCE(graph, AlphaK(2, 1)).top_r(2, warm_start="zap")

    def test_non_iterable_rejected(self, graph):
        with pytest.raises(ParameterError):
            MSCE(graph, AlphaK(2, 1)).top_r(2, warm_start=42)

    def test_non_maximal_subset_rejected(self, graph):
        # {1, 2} is a valid (2,1)-clique but not maximal.
        with pytest.raises(ParameterError):
            MSCE(graph, AlphaK(2, 1)).top_r(2, warm_start=[{1, 2}])

    def test_unknown_node_rejected(self, graph):
        with pytest.raises(ParameterError):
            MSCE(graph, AlphaK(2, 1)).top_r(2, warm_start=[{1, 999}])

    def test_empty_incumbent_rejected(self, graph):
        with pytest.raises(ParameterError):
            MSCE(graph, AlphaK(2, 1)).top_r(2, warm_start=[set()])

    def test_duplicate_incumbents_rejected(self, graph):
        truth = MSCE(graph, AlphaK(3, 1)).top_r(1).cliques
        with pytest.raises(ParameterError):
            MSCE(graph, AlphaK(3, 1)).top_r(1, warm_start=[truth[0], truth[0]])

    def test_below_min_size_rejected(self, graph):
        truth = MSCE(graph, AlphaK(2, 1)).top_r(3).cliques
        small = min(truth, key=lambda c: c.size)
        with pytest.raises(ParameterError):
            MSCE(graph, AlphaK(2, 1), min_size=small.size + 1).top_r(
                3, warm_start=[small]
            )

    def test_warm_start_with_max_results_rejected(self, graph):
        with pytest.raises(ParameterError):
            MSCE(graph, AlphaK(2, 1), max_results=5).top_r(2, warm_start="portfolio")

    def test_parallel_warm_start_requires_top_r(self, graph):
        with pytest.raises(ParameterError):
            enumerate_parallel(graph, 2, 1, workers=1, warm_start="portfolio")

    def test_wrong_model_incumbent_rejected(self, graph):
        # A maximal MSCE clique need not be balanced; validation runs
        # under the *active* model.
        msce_truth = MSCE(graph, AlphaK(2, 1)).top_r(1).cliques
        balanced = MSCE(graph, PARAMS["balanced"], model="balanced")
        probe = validate_warm_start  # direct API, clearer error surface
        if not make_constraint("balanced", PARAMS["balanced"]).feasible(
            graph, set(msce_truth[0].nodes)
        ):
            with pytest.raises(ParameterError):
                balanced.top_r(1, warm_start=msce_truth)

    def test_validate_warm_start_normalises(self, graph):
        params = AlphaK(3, 1)
        rows = validate_warm_start(graph, params, [{1, 2, 3, 4, 5}])
        assert len(rows) == 1
        assert rows[0].nodes == frozenset({1, 2, 3, 4, 5})
        assert rows[0].positive_edges == 9
        assert rows[0].negative_edges == 1

    def test_prepare_warm_start_none_is_none(self, graph):
        assert prepare_warm_start(graph, AlphaK(2, 1), 2, None) is None
