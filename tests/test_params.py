"""Unit tests for the (alpha, k) parameter object."""

import pytest

from repro.core import AlphaK, make_params
from repro.exceptions import ParameterError


class TestValidation:
    def test_valid_parameters(self):
        params = AlphaK(alpha=3, k=1)
        assert params.alpha == 3 and params.k == 1

    def test_float_integer_k_accepted(self):
        assert AlphaK(alpha=2, k=3.0).k == 3

    def test_fractional_k_rejected(self):
        with pytest.raises(ParameterError):
            AlphaK(alpha=2, k=1.5)

    def test_negative_k_rejected(self):
        with pytest.raises(ParameterError):
            AlphaK(alpha=2, k=-1)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ParameterError):
            AlphaK(alpha=-0.5, k=1)

    def test_nan_alpha_rejected(self):
        with pytest.raises(ParameterError):
            AlphaK(alpha=float("nan"), k=1)

    def test_make_params_wrapper(self):
        assert make_params(4, 3) == AlphaK(4, 3)


class TestDerivedThresholds:
    def test_positive_threshold_ceils(self):
        assert AlphaK(alpha=1.5, k=3).positive_threshold == 5  # ceil(4.5)
        assert AlphaK(alpha=3, k=1).positive_threshold == 3
        assert AlphaK(alpha=2.5, k=2).positive_threshold == 5

    def test_core_order(self):
        assert AlphaK(3, 1).core_order == 2
        assert AlphaK(0, 5).core_order == 0  # clamped

    def test_min_clique_size(self):
        assert AlphaK(3, 1).min_clique_size == 4
        assert AlphaK(4, 3).min_clique_size == 13
        assert AlphaK(2, 0).min_clique_size == 1

    def test_degenerate_detection(self):
        assert AlphaK(0, 3).is_degenerate
        assert AlphaK(3, 0).is_degenerate
        assert not AlphaK(1, 1).is_degenerate

    def test_str(self):
        assert str(AlphaK(2.5, 3)) == "(alpha=2.5, k=3)"

    def test_frozen(self):
        params = AlphaK(2, 1)
        with pytest.raises(Exception):
            params.k = 5
