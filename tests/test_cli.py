"""End-to-end tests for the signed-clique command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io import write_signed_edgelist
from tests.conftest import PAPER_EDGES
from repro.graphs import SignedGraph


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "paper.txt"
    write_signed_edgelist(SignedGraph(PAPER_EDGES), path)
    return str(path)


class TestStats:
    def test_stats_output(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        assert "17" in out and "negative fraction" in out


class TestMccore:
    def test_mccore_nodes(self, graph_file, capsys):
        assert main(["mccore", graph_file, "--alpha", "3", "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "5 nodes" in out
        assert "1 2 3 4 5" in out

    def test_positive_core_method(self, graph_file, capsys):
        assert main(
            ["mccore", graph_file, "--alpha", "3", "-k", "1", "--method", "positive-core"]
        ) == 0
        assert "7 nodes" in capsys.readouterr().out


class TestEnumerate:
    def test_text_output(self, graph_file, capsys):
        assert main(["enumerate", graph_file, "--alpha", "3", "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "#1: size=5" in out

    def test_json_output(self, graph_file, capsys):
        assert main(["enumerate", graph_file, "--alpha", "3", "-k", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["nodes"] == [1, 2, 3, 4, 5]
        assert payload[0]["negative_edges"] == 1

    def test_selection_flag(self, graph_file, capsys):
        assert main(
            ["enumerate", graph_file, "--alpha", "3", "-k", "1", "--selection", "random"]
        ) == 0
        assert "size=5" in capsys.readouterr().out


class TestTopAndConductance:
    def test_top(self, graph_file, capsys):
        assert main(["top", graph_file, "--alpha", "3", "-k", "0", "-r", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("#") == 2

    def test_conductance(self, graph_file, capsys):
        assert main(["conductance", graph_file, "--alpha", "3", "-k", "1", "-r", "5"]) == 0
        assert "signed_conductance=" in capsys.readouterr().out


class TestGenerate:
    def test_generate_writes_file(self, tmp_path, capsys):
        out_path = tmp_path / "toy.txt"
        assert main(["generate", "flysign", str(out_path), "--seed", "1"]) == 0
        assert out_path.exists()
        assert "wrote" in capsys.readouterr().out


class TestQuery:
    def test_query_finds_clique(self, graph_file, capsys):
        assert main(["query", graph_file, "--alpha", "3", "-k", "1", "1"]) == 0
        assert "size=5" in capsys.readouterr().out

    def test_query_multiple_nodes(self, graph_file, capsys):
        assert main(["query", graph_file, "--alpha", "3", "-k", "1", "2", "3"]) == 0
        assert "size=5" in capsys.readouterr().out

    def test_query_empty_answer(self, graph_file, capsys):
        assert main(["query", graph_file, "--alpha", "3", "-k", "1", "8"]) == 0
        assert "no maximal" in capsys.readouterr().out

    def test_query_unknown_node_errors(self, graph_file, capsys):
        assert main(["query", graph_file, "--alpha", "3", "-k", "1", "42"]) == 1
        assert "error:" in capsys.readouterr().err


class TestBalance:
    def test_balance_report(self, graph_file, capsys):
        assert main(["balance", graph_file]) == 0
        out = capsys.readouterr().out
        assert "balanced:" in out and "triangle census" in out


class TestSweep:
    def test_sweep_prints_grid_and_suggestion(self, graph_file, capsys):
        assert main(["sweep", graph_file, "--alphas", "2", "3", "--ks", "0", "1"]) == 0
        out = capsys.readouterr().out
        assert "alpha\\k" in out
        assert "strictest non-empty setting" in out


class TestErrors:
    def test_missing_file_reports_error(self, tmp_path, capsys):
        bogus = tmp_path / "bad.txt"
        bogus.write_text("1 2 weird\n")
        assert main(["stats", str(bogus)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestReportCommand:
    def test_report_subcommand(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", str(target), "--sections", "table1"]) == 0
        assert target.exists()
        assert "wrote" in capsys.readouterr().out
