"""Unit tests for maximality testing (Definition 2), exact vs paper-style.

Includes the two crafted cases from DESIGN.md showing where the paper's
single-extension MaxTest diverges from Definition 2.
"""

import itertools
import random

import pytest

from repro.core import AlphaK, brute_force_maximal, is_alpha_k_clique, is_maximal
from repro.core.maxtest import make_maxtest, single_extension_test
from repro.exceptions import ParameterError
from repro.graphs import SignedGraph
from tests.conftest import make_random_signed_graph


def _positive_clique(nodes):
    return [(u, v, "+") for u, v in itertools.combinations(nodes, 2)]


class TestPaperExample:
    def test_31_clique_is_maximal(self, paper_graph):
        members = {1, 2, 3, 4, 5}
        params = AlphaK(3, 1)
        assert is_maximal(paper_graph, members, params)
        assert single_extension_test(paper_graph, members, params)

    def test_subclique_is_not_maximal(self, paper_graph):
        params = AlphaK(3, 1)
        assert is_alpha_k_clique(paper_graph, {1, 2, 4, 5}, params)
        assert not is_maximal(paper_graph, {1, 2, 4, 5}, params)


class TestDivergenceFromPaperTest:
    def test_paper_test_falsely_rejects(self):
        # C = positive 4-clique {a,b,c,d}; v is adjacent to all of C with
        # 2 positive and 2 negative edges. At (alpha=1.5, k=2) =>
        # threshold 3: v passes the negative screen (so the paper's test
        # says "extendable"), but C u {v} fails the positive constraint
        # and no larger superset exists — C IS maximal.
        params = AlphaK(1.5, 2)
        edges = _positive_clique("abcd") + [
            ("v", "a", "+"), ("v", "b", "+"), ("v", "c", "-"), ("v", "d", "-"),
        ]
        graph = SignedGraph(edges)
        members = set("abcd")
        assert is_alpha_k_clique(graph, members, params)
        assert is_maximal(graph, members, params)          # exact: maximal
        assert not single_extension_test(graph, members, params)  # paper: wrong

    def test_two_node_extension_found_by_exact_search(self):
        # v and w individually fail the positive constraint but lift
        # each other over it: C u {v, w} is a valid (1.5, 2)-clique, so
        # C is NOT maximal — the exact search must look past single
        # extensions to see it.
        params = AlphaK(1.5, 2)
        edges = _positive_clique("abcd") + [
            ("v", "a", "+"), ("v", "b", "+"), ("v", "c", "-"), ("v", "d", "-"),
            ("w", "a", "+"), ("w", "b", "+"), ("w", "c", "-"), ("w", "d", "-"),
            ("v", "w", "+"),
        ]
        graph = SignedGraph(edges)
        members = set("abcd")
        assert is_alpha_k_clique(graph, members, params)
        assert is_alpha_k_clique(graph, members | {"v", "w"}, params)
        assert not is_maximal(graph, members, params)

    def test_paper_test_never_wrong_when_reporting_maximal(self):
        # Soundness direction: whenever the paper's test says "maximal",
        # the exact test agrees (see maxtest module docstring).
        rng = random.Random(41)
        for _ in range(40):
            graph = make_random_signed_graph(rng)
            params = AlphaK(rng.choice([1, 1.5, 2]), rng.choice([0, 1, 2]))
            for clique in brute_force_maximal(graph, params):
                members = set(clique.nodes)
                if single_extension_test(graph, members, params):
                    assert is_maximal(graph, members, params)


class TestExactAgainstBruteForce:
    def test_exact_matches_ground_truth(self):
        rng = random.Random(42)
        for _ in range(30):
            graph = make_random_signed_graph(rng, n_range=(4, 9))
            params = AlphaK(rng.choice([1, 1.5, 2]), rng.choice([0, 1, 2]))
            maximal_sets = {c.nodes for c in brute_force_maximal(graph, params)}
            # Every valid (alpha, k)-clique must be classified correctly.
            nodes = sorted(graph.nodes(), key=repr)
            for size in range(max(params.min_clique_size, 1), len(nodes) + 1):
                for subset in itertools.combinations(nodes, size):
                    subset_set = set(subset)
                    if not is_alpha_k_clique(graph, subset_set, params):
                        continue
                    expected = frozenset(subset_set) in maximal_sets
                    assert is_maximal(graph, subset_set, params) == expected


class TestFactory:
    def test_make_maxtest(self):
        assert make_maxtest("exact") is is_maximal
        assert make_maxtest("paper") is single_extension_test
        with pytest.raises(ParameterError):
            make_maxtest("hopeful")
