"""Unit tests for the bulk and weighted graph builders."""

import pytest

from repro.exceptions import GraphError, SelfLoopError
from repro.graphs import NEGATIVE, POSITIVE, SignedGraphBuilder, WeightedGraphBuilder


class TestSignedGraphBuilder:
    def test_unknown_policy_rejected(self):
        with pytest.raises(GraphError):
            SignedGraphBuilder(on_duplicate="whatever")

    def test_error_policy_raises_on_conflict(self):
        builder = SignedGraphBuilder(on_duplicate="error")
        builder.add(1, 2, "+")
        with pytest.raises(GraphError):
            builder.add(2, 1, "-")

    def test_error_policy_allows_same_sign_repeat(self):
        builder = SignedGraphBuilder(on_duplicate="error")
        builder.add(1, 2, "+")
        builder.add(2, 1, "+")
        assert builder.build().sign(1, 2) == POSITIVE

    def test_last_policy_keeps_final_sign(self):
        builder = SignedGraphBuilder(on_duplicate="last")
        builder.add_all([(1, 2, "+"), (2, 1, "-")])
        assert builder.build().sign(1, 2) == NEGATIVE

    def test_majority_policy(self):
        builder = SignedGraphBuilder(on_duplicate="majority")
        builder.add_all([(1, 2, "+"), (1, 2, "+"), (1, 2, "-")])
        assert builder.build().sign(1, 2) == POSITIVE

    def test_majority_tie_resolves_negative(self):
        builder = SignedGraphBuilder(on_duplicate="majority")
        builder.add_all([(1, 2, "+"), (1, 2, "-")])
        assert builder.build().sign(1, 2) == NEGATIVE

    def test_isolated_nodes_survive(self):
        builder = SignedGraphBuilder()
        builder.add_node("lonely")
        graph = builder.build()
        assert graph.has_node("lonely")
        assert graph.degree("lonely") == 0

    def test_self_loop_rejected(self):
        builder = SignedGraphBuilder()
        with pytest.raises(SelfLoopError):
            builder.add(3, 3, "+")

    def test_unorderable_node_pair(self):
        builder = SignedGraphBuilder(on_duplicate="last")
        builder.add(1, "a", "+")
        builder.add("a", 1, "-")
        assert builder.build().sign(1, "a") == NEGATIVE


class TestWeightedGraphBuilder:
    def test_dblp_recipe_thresholds_at_average(self):
        builder = WeightedGraphBuilder()
        builder.add(1, 2)
        builder.add(1, 2)
        builder.add(2, 3)
        graph = builder.build_signed()  # tau = 1.5
        assert graph.sign(1, 2) == POSITIVE
        assert graph.sign(2, 3) == NEGATIVE

    def test_explicit_threshold(self):
        builder = WeightedGraphBuilder()
        builder.add(1, 2, weight=5.0)
        builder.add(3, 4, weight=1.0)
        graph = builder.build_signed(threshold=2.0)
        assert graph.sign(1, 2) == POSITIVE
        assert graph.sign(3, 4) == NEGATIVE

    def test_average_weight(self):
        builder = WeightedGraphBuilder()
        builder.add(1, 2, weight=1.0)
        builder.add(2, 3, weight=3.0)
        assert builder.average_weight() == pytest.approx(2.0)

    def test_average_weight_empty_raises(self):
        with pytest.raises(GraphError):
            WeightedGraphBuilder().average_weight()

    def test_weights_accumulate_regardless_of_direction(self):
        builder = WeightedGraphBuilder()
        builder.add(1, 2)
        builder.add(2, 1)
        builder.add(9, 8)
        graph = builder.build_signed(threshold=2)
        assert graph.sign(1, 2) == POSITIVE
        assert graph.sign(8, 9) == NEGATIVE

    def test_self_loop_rejected(self):
        with pytest.raises(SelfLoopError):
            WeightedGraphBuilder().add(1, 1)
